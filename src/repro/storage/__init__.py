"""etcd-like MVCC storage for control planes."""

from .errors import (
    CompactedError,
    FencingRevoked,
    KeyAlreadyExists,
    KeyNotFound,
    RevisionCompacted,
    RevisionConflict,
    StaleRead,
    StorageError,
    StoreUnavailable,
    WalTornRecord,
)
from .etcd import EVENT_DELETE, EVENT_PUT, EtcdStore, Watch, WatchEvent
from .replicated import ReplicatedStore, StoreReplica, coordinator_of
from .wal import WalRecord, WalSegment, WriteAheadLog

__all__ = [
    "EVENT_DELETE",
    "EVENT_PUT",
    "CompactedError",
    "EtcdStore",
    "FencingRevoked",
    "KeyAlreadyExists",
    "KeyNotFound",
    "ReplicatedStore",
    "RevisionCompacted",
    "RevisionConflict",
    "StaleRead",
    "StorageError",
    "StoreReplica",
    "StoreUnavailable",
    "WalRecord",
    "WalSegment",
    "WalTornRecord",
    "Watch",
    "WatchEvent",
    "WriteAheadLog",
    "coordinator_of",
]
