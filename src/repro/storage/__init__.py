"""etcd-like MVCC storage for control planes."""

from .errors import (
    FencingRevoked,
    KeyAlreadyExists,
    KeyNotFound,
    RevisionCompacted,
    RevisionConflict,
    StorageError,
)
from .etcd import EVENT_DELETE, EVENT_PUT, EtcdStore, Watch, WatchEvent

__all__ = [
    "EVENT_DELETE",
    "EVENT_PUT",
    "EtcdStore",
    "FencingRevoked",
    "KeyAlreadyExists",
    "KeyNotFound",
    "RevisionCompacted",
    "RevisionConflict",
    "StorageError",
    "Watch",
    "WatchEvent",
]
