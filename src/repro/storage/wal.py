"""Append-only write-ahead log for :class:`EtcdStore` (DESIGN.md §13).

The WAL models the disk that survives a kill -9 while the store's memory
does not.  Every mutation the store emits becomes one :class:`WalRecord`:
the event fields are serialized to canonical JSON bytes (``sort_keys``,
so the checksum never depends on dict insertion order — linter rule D006)
and guarded by a CRC32.  Records accumulate in bounded
:class:`WalSegment` files; a segment rolls when it reaches
``segment_records`` entries, mirroring etcd's 64 MB segment files.

Durability semantics:

- ``fsync_interval == 0`` (the default) models etcd's fsync-per-commit:
  a record is durable the moment :meth:`WriteAheadLog.append` returns.
- ``fsync_interval > 0`` batches: a sim process calls :meth:`sync` on a
  timer, so records appended since the last fsync point are *volatile*
  and a :meth:`power_off` drops them — crash recovery then lands on the
  last fsync boundary, never past it.

Compaction is anchored to snapshots: :meth:`compact` installs the
snapshot as the log's *anchor* and drops every segment fully covered by
it.  Recovery (:meth:`recover_into`) restores the anchor and replays the
remaining durable records; a gap between the anchor and the first record
raises :class:`CompactedError` instead of silently resurrecting a store
with missing committed writes.

A torn tail — kill -9 landing mid-write, or the chaos ``WalCorruption``
fault — is modeled by :meth:`tear_tail`: the last record's payload is
truncated so its checksum fails.  The recovery decoder stops at the
first torn record and returns the committed prefix; the torn suffix was
never acknowledged to a client, so dropping it loses nothing committed.
"""

import json
import zlib

from repro.telemetry import telemetry_of

from .errors import CompactedError, WalTornRecord
from .etcd import WatchEvent

WAL_PUT = "PUT"
WAL_DELETE = "DELETE"
# Fencing-floor advances ride in the log without a revision bump so a
# recovered store rejects a deposed leader's stale token exactly like
# the store that crashed would have.
WAL_FENCE = "FENCE"


def _encode_payload(fields):
    """Canonical JSON bytes: the hashed form is stable across runs and
    PYTHONHASHSEED values (never repr/str — linter rule D006)."""
    return json.dumps(fields, sort_keys=True, separators=(",", ":")).encode()


class WalRecord:
    """One log entry: an encoded mutation plus its integrity checksum.

    ``stamp`` carries the appender's vector-clock stamp so a follower
    applying this record absorbs a happens-before edge from the writer
    (see ``repro.analysis.racedetect``).
    """

    __slots__ = ("lsn", "type", "revision", "key", "payload", "crc",
                 "durable", "stamp")

    def __init__(self, lsn, type, revision, key, payload, crc,
                 stamp=None):
        self.lsn = lsn
        self.type = type
        self.revision = revision
        self.key = key
        self.payload = payload
        self.crc = crc
        self.durable = False
        self.stamp = stamp

    @classmethod
    def make(cls, lsn, type, revision, key, fields, stamp=None):
        payload = _encode_payload(fields)
        return cls(lsn, type, revision, key, payload,
                   zlib.crc32(payload), stamp=stamp)

    @property
    def nbytes(self):
        # Payload plus a fixed header (lsn + crc + length), like the
        # 8-byte length/crc framing of a real WAL entry.
        return len(self.payload) + 24

    @property
    def torn(self):
        return zlib.crc32(self.payload) != self.crc

    def decode(self):
        """The record's fields; raises :class:`WalTornRecord` on a tear."""
        if self.torn:
            raise WalTornRecord(self.lsn)
        return json.loads(self.payload.decode())

    def __repr__(self):
        return (f"<WalRecord lsn={self.lsn} {self.type} "
                f"{self.key} @{self.revision}>")


class WalSegment:
    """A bounded run of records (one 'file' of the log)."""

    __slots__ = ("index", "records", "nbytes")

    def __init__(self, index):
        self.index = index
        self.records = []
        self.nbytes = 0

    def append(self, record):
        self.records.append(record)
        self.nbytes += record.nbytes

    @property
    def last_revision(self):
        return self.records[-1].revision if self.records else 0


class WriteAheadLog:
    """Segmented, checksummed, compactable append-only log.

    ``on_append`` (set by :class:`ReplicatedStore` on the leader) is
    called once per record *when it becomes durable* — replication
    streams committed entries, never a volatile tail a crash could
    retract.
    """

    def __init__(self, sim, name, segment_records=512, fsync_interval=0.0):
        self.sim = sim
        self.name = name
        self.segment_records = segment_records
        self.fsync_interval = fsync_interval
        self.segments = [WalSegment(0)]
        # Snapshot anchoring the compacted prefix (None until the first
        # compaction): recovery restores it before replaying records.
        self.anchor = None
        self.anchor_revision = 0
        self.next_lsn = 0
        self.durable_lsn = 0       # records with lsn < durable_lsn are synced
        self.durable_revision = 0  # last event revision known durable
        self.fsyncs = 0
        self.torn_records = 0
        self.on_append = None
        telemetry = telemetry_of(sim)
        self._appends = telemetry.counter(
            "wal_appends_total", "WAL records appended",
            labels=("store",)).labels(store=name)
        telemetry.gauge(
            "wal_bytes", "live WAL size in bytes",
            labels=("store",)).labels(store=name).set_function(
                lambda: self.nbytes)
        self._fsync_counter = telemetry.counter(
            "wal_fsyncs_total", "WAL fsync batches",
            labels=("store",)).labels(store=name)
        if fsync_interval > 0:
            sim.process(self._fsync_loop(), name=f"wal-fsync:{name}")

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------

    def append_event(self, event, stamp=None):
        """Log one store mutation (a :class:`WatchEvent`)."""
        fields = {"type": event.type, "key": event.key,
                  "revision": event.revision, "value": event.value}
        return self._append(event.type, event.revision, event.key, fields,
                            stamp=stamp)

    def append_fence(self, domain, token, revision, stamp=None):
        """Log a fencing-floor advance (no revision bump of its own)."""
        fields = {"type": WAL_FENCE, "key": domain, "revision": revision,
                  "token": token}
        return self._append(WAL_FENCE, revision, domain, fields, stamp=stamp)

    def _append(self, type, revision, key, fields, stamp=None):
        record = WalRecord.make(self.next_lsn, type, revision, key, fields,
                                stamp=stamp)
        self.next_lsn += 1
        segment = self.segments[-1]
        if len(segment.records) >= self.segment_records:
            segment = WalSegment(segment.index + 1)
            self.segments.append(segment)
        segment.append(record)
        self._appends.inc()
        if self.fsync_interval <= 0:
            self.sync()
        return record

    def sync(self):
        """Fsync: everything appended so far becomes durable."""
        newly_durable = []
        for segment in reversed(self.segments):
            done = False
            for record in reversed(segment.records):
                if record.durable:
                    done = True
                    break
                newly_durable.append(record)
            if done:
                break
        if not newly_durable:
            return 0
        self.fsyncs += 1
        self._fsync_counter.inc()
        for record in reversed(newly_durable):
            record.durable = True
            self.durable_lsn = record.lsn + 1
            if record.type != WAL_FENCE:
                self.durable_revision = record.revision
            if self.on_append is not None:
                self.on_append(record)
        return len(newly_durable)

    def _fsync_loop(self):
        while True:
            yield self.sim.timeout(self.fsync_interval)
            self.sync()

    # ------------------------------------------------------------------
    # Crash surface
    # ------------------------------------------------------------------

    def power_off(self):
        """Kill -9: drop the un-fsynced tail (it never reached the disk)."""
        dropped = 0
        for segment in self.segments:
            kept = [r for r in segment.records if r.durable]
            dropped += len(segment.records) - len(kept)
            if len(kept) != len(segment.records):
                segment.records = kept
                segment.nbytes = sum(r.nbytes for r in kept)
        if dropped:
            self.next_lsn = self.durable_lsn
        return dropped

    def tear_tail(self):
        """Corrupt the last record (a write torn mid-flight by the crash).

        Returns the torn record, or None when the log is empty.
        """
        for segment in reversed(self.segments):
            if segment.records:
                record = segment.records[-1]
                record.payload = record.payload[:max(len(record.payload) // 2,
                                                     1)]
                self.torn_records += 1
                return record
        return None

    def reset(self, anchor=None):
        """Start a fresh log (restore rolled the store to ``anchor``)."""
        self.segments = [WalSegment(0)]
        self.anchor = anchor
        self.anchor_revision = anchor["revision"] if anchor else 0
        self.durable_revision = self.anchor_revision
        self.next_lsn = 0
        self.durable_lsn = 0

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self, snapshot):
        """Anchor the log to ``snapshot`` and drop covered segments.

        A segment is dropped only when *every* record in it is durable
        and at or below the snapshot revision; a straddling segment is
        kept whole (recovery skips its covered prefix).
        """
        if snapshot["revision"] < self.anchor_revision:
            return 0
        self.anchor = snapshot
        self.anchor_revision = snapshot["revision"]
        kept, dropped = [], 0
        for segment in self.segments:
            if (segment.records
                    and segment.last_revision <= self.anchor_revision
                    and all(r.durable for r in segment.records)):
                dropped += len(segment.records)
            else:
                kept.append(segment)
        self.segments = kept or [WalSegment(0)]
        return dropped

    # ------------------------------------------------------------------
    # Read / recovery path
    # ------------------------------------------------------------------

    @property
    def nbytes(self):
        return sum(segment.nbytes for segment in self.segments)

    @property
    def record_count(self):
        return sum(len(segment.records) for segment in self.segments)

    def is_empty(self):
        return self.anchor is None and self.durable_lsn == 0

    def records_since(self, revision, durable_only=True):
        """Durable, checksum-verified records strictly after ``revision``.

        Raises :class:`CompactedError` when the requested tail starts
        below the anchor — those records are gone; the caller needs the
        anchor snapshot (full state transfer), not a replay.

        The scan stops at the first torn or volatile record: nothing
        after a tear is trustworthy (the committed-prefix property).
        """
        if revision < self.anchor_revision:
            raise CompactedError(revision, self.anchor_revision)
        out = []
        for segment in self.segments:
            for record in segment.records:
                if durable_only and not record.durable:
                    return out
                if record.torn:
                    return out
                if record.revision <= revision:
                    # Covered by the receiver's snapshot/state (fence
                    # floors below the resume point travel with it too).
                    continue
                out.append(record)
        return out

    def recovered_tail(self):
        """(records, torn) — the durable committed prefix after the anchor.

        Decodes and verifies every record; truncates at the first torn
        one.  ``torn`` counts records dropped by checksum failure.
        """
        records, torn = [], 0
        for segment in self.segments:
            for record in segment.records:
                if not record.durable or record.torn:
                    if record.durable and record.torn:
                        torn += 1
                    return records, torn
                records.append(record)
        return records, torn

    def durable_state(self):
        """key -> (value, mod_revision) at the last durable point.

        Pure-dict replay of anchor + tail, used by the zero-loss verifier
        to know exactly what a crash is *obliged* to preserve without
        instantiating a scratch store.
        """
        state = {}
        if self.anchor is not None:
            for key, (value, _create, mod_rev, _version) in \
                    self.anchor["data"].items():
                state[key] = (value, mod_rev)
        records, _torn = self.recovered_tail()
        for record in records:
            if record.type == WAL_FENCE:
                continue
            fields = record.decode()
            if record.type == WAL_PUT:
                state[record.key] = (fields["value"], record.revision)
            elif record.type == WAL_DELETE:
                state.pop(record.key, None)
        return state

    def _truncate_after(self, records):
        """Drop everything past the verified prefix.

        Torn and volatile records are unrecoverable; real WAL recovery
        truncates the file at the first invalid record so post-recovery
        appends extend a clean log instead of stranding behind a torn
        one.  Rewinds the lsn/revision bookkeeping to the prefix.
        """
        keep = len(records)
        for segment in self.segments:
            take = min(keep, len(segment.records))
            if take != len(segment.records):
                segment.records = segment.records[:take]
                segment.nbytes = sum(r.nbytes for r in segment.records)
            keep -= take
        while len(self.segments) > 1 and not self.segments[-1].records:
            self.segments.pop()
        last = records[-1] if records else None
        self.next_lsn = (last.lsn + 1) if last is not None else 0
        self.durable_lsn = self.next_lsn
        self.durable_revision = self.anchor_revision
        for record in reversed(records):
            if record.type != WAL_FENCE:
                self.durable_revision = record.revision
                break

    def recover_into(self, store, truncate=False):
        """Rebuild ``store`` to the last durable revision.

        Restores the anchor snapshot (or wipes, for a never-compacted
        log), replays the committed record prefix, and re-establishes
        fencing floors.  Verifies event-record contiguity: a gap means
        records were compacted out from under the anchor and raises
        :class:`CompactedError`.

        ``truncate=True`` (crash self-recovery) also drops the torn /
        volatile suffix from this log.  It must stay False when
        replaying a *live* source log into another store (follower
        resync): the source leader's un-fsynced tail is not torn, it
        just hasn't hit the disk yet.

        Returns the recovered revision.
        """
        records, _torn = self.recovered_tail()
        if truncate:
            self._truncate_after(records)
        if self.anchor is not None:
            store.restore(self.anchor)
        else:
            store.wipe()
        expected = store.revision
        for record in records:
            fields = record.decode()
            if record.type == WAL_FENCE:
                floor = store._fences.get(record.key)
                if floor is None or fields["token"] > floor:
                    store._fences[record.key] = fields["token"]
                continue
            if record.revision <= expected:
                continue  # covered by the anchor snapshot
            if record.revision != expected + 1:
                raise CompactedError(expected, record.revision)
            store._apply_replayed(WatchEvent(record.type, record.key,
                                             fields["value"],
                                             record.revision))
            expected = record.revision
            detector = getattr(self.sim, "race_detector", None)
            if detector is not None and record.stamp is not None:
                detector.absorb(record.stamp)
        store._compacted_revision = store.revision
        return store.revision

    def stats(self):
        return {
            "segments": len(self.segments),
            "records": self.record_count,
            "bytes": self.nbytes,
            "durable_lsn": self.durable_lsn,
            "durable_revision": self.durable_revision,
            "anchor_revision": self.anchor_revision,
            "fsyncs": self.fsyncs,
            "torn_records": self.torn_records,
        }
