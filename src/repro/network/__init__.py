"""Data-plane substrate: iptables, VPC/ENI, simulated gRPC."""

from .grpc import RpcChannel, RpcError, RpcServer
from .iptables import IpTables, NatRule
from .vpc import ConnectivityChecker, Eni, NetworkStack, Vpc

__all__ = [
    "ConnectivityChecker",
    "Eni",
    "IpTables",
    "NatRule",
    "NetworkStack",
    "RpcChannel",
    "RpcError",
    "RpcServer",
    "Vpc",
]
