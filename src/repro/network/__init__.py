"""Data-plane substrate: iptables, VPC/ENI, simulated gRPC, WAN links."""

from .grpc import RpcChannel, RpcError, RpcServer
from .iptables import IpTables, NatRule
from .link import NetworkLink
from .vpc import ConnectivityChecker, Eni, NetworkStack, Vpc

__all__ = [
    "ConnectivityChecker",
    "Eni",
    "IpTables",
    "NatRule",
    "NetworkLink",
    "NetworkStack",
    "RpcChannel",
    "RpcError",
    "RpcServer",
    "Vpc",
]
