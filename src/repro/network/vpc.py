"""VPC, ENI, and network-stack models.

The paper's data-plane assumption: tenant containers attach to a tenant
VPC through a vendor network interface (like an AWS ENI), so their
traffic **bypasses the host network stack** — breaking the stock
kubeproxy, whose rules live in the host iptables.  These classes model
just enough to demonstrate the break and the fix.
"""

from .iptables import IpTables


class NetworkStack:
    """A network namespace: its own iptables + attached addresses."""

    def __init__(self, name):
        self.name = name
        self.iptables = IpTables(owner=name)
        self.addresses = set()

    def attach_address(self, ip):
        self.addresses.add(ip)

    def detach_address(self, ip):
        self.addresses.discard(ip)

    def __repr__(self):
        return f"<NetworkStack {self.name}>"


class Eni:
    """An elastic network interface binding a stack into a VPC."""

    __slots__ = ("vpc", "stack", "ip")

    def __init__(self, vpc, stack, ip):
        self.vpc = vpc
        self.stack = stack
        self.ip = ip


class Vpc:
    """A tenant's virtual private cloud: a flat L3 domain of ENIs."""

    def __init__(self, vpc_id, cidr_base="172.16"):
        self.vpc_id = vpc_id
        self.cidr_base = cidr_base
        self._enis = {}
        self._next_ip = 1

    def allocate_ip(self):
        index = self._next_ip
        self._next_ip += 1
        high, low = divmod(index, 254)
        return f"{self.cidr_base}.{high % 254}.{low + 1}"

    def attach(self, stack, ip=None):
        """Create an ENI for a network stack; returns the ENI."""
        ip = ip or self.allocate_ip()
        if ip in self._enis:
            raise ValueError(f"IP {ip} already attached in {self.vpc_id}")
        eni = Eni(self, stack, ip)
        self._enis[ip] = eni
        stack.attach_address(ip)
        return eni

    def detach(self, ip):
        eni = self._enis.pop(ip, None)
        if eni is not None:
            eni.stack.detach_address(ip)

    def stack_for(self, ip):
        eni = self._enis.get(ip)
        return eni.stack if eni is not None else None

    def reachable(self, ip):
        return ip in self._enis

    def __len__(self):
        return len(self._enis)


class ConnectivityChecker:
    """Answers: can this source reach ip:port, given its network stack?

    The resolution path mirrors reality:

    1. the source's own iptables may DNAT a service clusterIP to an
       endpoint address (this is the step that fails when the rules are
       only in the *host* stack but the traffic originates in a Kata
       guest attached to a VPC);
    2. the resulting address must belong to an ENI in the same VPC.
    """

    def __init__(self, vpc):
        self.vpc = vpc

    def resolve(self, src_stack, ip, port, protocol="TCP"):
        """Return the final (ip, port) the connection lands on, or None."""
        translated = src_stack.iptables.translate(ip, port, protocol)
        if translated is not None:
            ip, port = translated
        if self.vpc.reachable(ip):
            return (ip, port)
        return None

    def can_reach(self, src_stack, ip, port, protocol="TCP"):
        return self.resolve(src_stack, ip, port, protocol) is not None
