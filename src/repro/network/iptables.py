"""A simulated iptables NAT table.

Models exactly what kubeproxy programs: DNAT rules translating a service
virtual IP (clusterIP:port) into one of the service's endpoint addresses.
Rules live in chains per service, like the KUBE-SERVICES / KUBE-SVC-*
layout; lookup picks endpoints round-robin (the iptables statistic-module
behaviour, deterministic here).
"""


class NatRule:
    """One DNAT rule: (cluster_ip, port, protocol) -> endpoints."""

    __slots__ = ("cluster_ip", "port", "protocol", "endpoints", "_rr")

    def __init__(self, cluster_ip, port, protocol="TCP", endpoints=()):
        self.cluster_ip = cluster_ip
        self.port = port
        self.protocol = protocol
        self.endpoints = list(endpoints)  # (ip, port) pairs
        self._rr = 0

    def pick(self):
        if not self.endpoints:
            return None
        endpoint = self.endpoints[self._rr % len(self.endpoints)]
        self._rr += 1
        return endpoint

    def matches(self, ip, port, protocol="TCP"):
        return (self.cluster_ip == ip and self.port == port
                and self.protocol == protocol)


class IpTables:
    """The NAT table of one network stack (host or Kata guest)."""

    def __init__(self, owner="host"):
        self.owner = owner
        self._rules = {}
        self.update_count = 0
        self.generation = 0

    def replace_service(self, cluster_ip, port, endpoints, protocol="TCP"):
        """Install or update the DNAT rule for one service port."""
        key = (cluster_ip, port, protocol)
        self._rules[key] = NatRule(cluster_ip, port, protocol, endpoints)
        self.update_count += 1
        self.generation += 1

    def remove_service(self, cluster_ip, port, protocol="TCP"):
        if self._rules.pop((cluster_ip, port, protocol), None) is not None:
            self.update_count += 1
            self.generation += 1

    def flush(self):
        self._rules.clear()
        self.generation += 1

    def translate(self, ip, port, protocol="TCP"):
        """DNAT lookup; returns an (ip, port) endpoint or None."""
        rule = self._rules.get((ip, port, protocol))
        if rule is None:
            return None
        return rule.pick()

    def rules(self):
        return list(self._rules.values())

    def rule_count(self):
        return len(self._rules)

    def has_service(self, cluster_ip, port, protocol="TCP"):
        return (cluster_ip, port, protocol) in self._rules

    def __len__(self):
        return len(self._rules)
