"""Simulated WAN/edge uplinks: added latency, jitter, and loss.

The paper's evaluation assumes every node sits next to the super
cluster; the multitenant edge-CaaS line of work (Şenel et al., 2023 in
PAPERS.md) does not — edge sites reach the control plane over
high-latency, lossy links.  :class:`NetworkLink` models one such uplink
as a client-side traversal cost: every API request from a component
behind the link pays ``latency`` (+ uniform ``jitter``) seconds of
round-trip delay and is dropped with probability ``loss``.  A drop
surfaces as :class:`~repro.apiserver.errors.ServerUnavailable`, which
the typed client classifies as retryable — so packet loss shows up as
retransmit latency and backoff pressure, exactly like a flaky WAN.

All randomness comes from a dedicated ``random.Random(seed)`` owned by
the link, so two same-seed runs traverse identically; nothing here
reads wall clock or global RNG state.  One link is typically shared by
every node of an edge site (the site uplink), which also keeps the
draw sequence independent of how many components sit behind it at
construction time.
"""

import random

from repro.apiserver.errors import ServerUnavailable


class NetworkLink:
    """One uplink profile shared by the clients attached to it.

    Parameters
    ----------
    sim:
        The owning simulation (timeouts come from its clock).
    latency:
        One-way-ish added delay per request, in simulated seconds.
    jitter:
        Extra uniform [0, jitter] delay per request.
    loss:
        Per-request drop probability in [0, 1).  Dropped requests raise
        :class:`ServerUnavailable`; the client retries with backoff.
    seed:
        Seed for the link-owned RNG (required whenever jitter or loss
        is non-zero, so draws never touch global randomness).
    """

    def __init__(self, sim, latency=0.0, jitter=0.0, loss=0.0, seed=0,
                 name="link"):
        if latency < 0 or jitter < 0:
            raise ValueError(f"{name}: latency/jitter must be >= 0")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"{name}: loss must be in [0, 1), got {loss}")
        self.sim = sim
        self.name = name
        self.latency = latency
        self.jitter = jitter
        self.loss = loss
        self.rng = random.Random(seed)
        self.trips = 0
        self.dropped = 0
        telemetry = getattr(sim, "telemetry", None)
        if telemetry is not None:
            self._trips_counter = telemetry.counter(
                "link_trips_total", "requests traversing a simulated uplink",
                labels=("link",)).labels(link=name)
            self._drops_counter = telemetry.counter(
                "link_drops_total", "requests dropped on a simulated uplink",
                labels=("link",)).labels(link=name)
        else:
            from repro.telemetry import NOOP

            self._trips_counter = NOOP
            self._drops_counter = NOOP

    # ------------------------------------------------------------------
    # Traversal hooks (called by repro.clientgo.client.Client)
    # ------------------------------------------------------------------

    def traverse(self):
        """Coroutine: pay the link delay, then maybe drop the request."""
        delay = self.latency + (self.rng.uniform(0.0, self.jitter)
                                if self.jitter else 0.0)
        if delay > 0.0:
            yield self.sim.timeout(delay)
        self._maybe_drop()
        self.trips += 1
        self._trips_counter.inc()

    def check(self):
        """Synchronous loss check (watch registration has no yield point)."""
        self._maybe_drop()
        self.trips += 1
        self._trips_counter.inc()

    def _maybe_drop(self):
        if self.loss and self.rng.random() < self.loss:
            self.dropped += 1
            self._drops_counter.inc()
            raise ServerUnavailable(f"{self.name}: packet lost on uplink")

    def describe(self):
        return (f"{self.name}: +{self.latency * 1000:g}ms"
                f"(+U[0,{self.jitter * 1000:g}]ms) loss={self.loss:g}")

    def __repr__(self):
        return f"<NetworkLink {self.describe()}>"
