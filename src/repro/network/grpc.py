"""A simulated gRPC transport.

Used for the secure channel between the enhanced kubeproxy and the Kata
agent inside each guest OS (paper §III-B(4)-(5)): the proxy pushes
service routing rules over this channel into the guest's iptables.
"""

from repro.simkernel.resources import Channel


class RpcError(Exception):
    """The remote handler raised or the channel is down."""


class RpcServer:
    """Registers named handlers; handlers are sim coroutines."""

    def __init__(self, sim, name="rpc-server"):
        self.sim = sim
        self.name = name
        self._handlers = {}
        self.healthy = True
        self.calls_served = 0

    def register(self, method, handler):
        """``handler(payload)`` must be a coroutine function."""
        self._handlers[method] = handler

    def dispatch(self, method, payload):
        """Coroutine: run the handler for ``method``."""
        if not self.healthy:
            raise RpcError(f"{self.name} is down")
        handler = self._handlers.get(method)
        if handler is None:
            raise RpcError(f"{self.name}: no handler for {method!r}")
        self.calls_served += 1
        result = yield from handler(payload)
        return result


class RpcChannel:
    """Client side: request/response with a round-trip latency."""

    def __init__(self, sim, server, round_trip_latency):
        self.sim = sim
        self.server = server
        self.round_trip_latency = round_trip_latency
        self.calls_made = 0

    def call(self, method, payload):
        """Coroutine: invoke ``method`` on the remote server."""
        self.calls_made += 1
        yield self.sim.timeout(self.round_trip_latency / 2)
        result = yield from self.server.dispatch(method, payload)
        yield self.sim.timeout(self.round_trip_latency / 2)
        return result

    def stream(self, name="rpc-stream"):
        """A server-push stream (e.g. watch-style notifications)."""
        return Channel(self.sim, name=name)
