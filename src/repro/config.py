"""Calibrated service-time model for every simulated component.

All constants are in simulated seconds.  They were tuned (see
EXPERIMENTS.md) so that the baseline super cluster exhibits the paper's
measured behaviour — a sequential scheduler peaking at a few hundred Pods
per second, ~18 s to create 10,000 Pods directly — and the VirtualCluster
pipeline lands near the paper's ~23 s with the reported phase breakdown.

Tests and benchmarks construct their own :class:`LatencyConfig` when they
need a different regime, so nothing here is process-global state.
"""

from dataclasses import dataclass, field, replace


@dataclass
class ApiServerLatency:
    """Request-path costs for one apiserver."""

    request_overhead: float = 0.0002   # authn/authz/admission CPU
    etcd_read: float = 0.0003
    etcd_write: float = 0.0010
    list_base: float = 0.002
    list_per_item: float = 0.00005
    watch_delivery: float = 0.0001     # store event -> watcher visible
    # Multi-op transaction: one etcd_write round trip amortized over the
    # batch, plus a small per-op apply cost inside the store.
    etcd_txn_per_op: float = 0.00012
    max_inflight: int = 400


@dataclass
class SchedulerLatency:
    """The super cluster's sequential default scheduler."""

    # ~1.9 ms/Pod -> peaks at ~525 Pods/s, the paper's "few hundred".
    service_time: float = 0.0018
    service_jitter: float = 0.0003     # uniform +/- jitter
    binding_write: float = 0.0008
    queue_poll_idle: float = 0.002


@dataclass
class SyncerLatency:
    """The resource syncer (paper §III-C).

    The enqueue/dequeue critical sections are serialized (guarded by one
    lock per queue) — the paper attributes the ~21% throughput drop to
    exactly this contention.
    """

    informer_handler: float = 0.00008  # event handler -> queue add
    dws_dequeue_cs: float = 0.0017     # serialized: caps downward ~590/s
    dws_process: float = 0.0012       # parallel per-worker reconcile work
    uws_dequeue_cs: float = 0.0021     # serialized: caps upward ~475/s
    uws_process: float = 0.0010
    scan_per_object: float = 0.00015   # periodic scanner per object
    per_item_cpu_overhead: float = 0.0025  # serde/bookkeeping CPU per item
    vnode_heartbeat_write: float = 0.0006
    default_dws_workers: int = 20
    default_uws_workers: int = 100
    scan_interval: float = 60.0
    # Per-tenant circuit breaker (fail fast when a tenant control plane
    # is unreachable instead of blocking shared workers).
    breaker_failure_threshold: int = 3
    breaker_open_duration: float = 2.0     # initial open period before probing
    breaker_max_open_duration: float = 30.0
    # Worker watchdog: respawn dead DWS/UWS workers with crash-loop backoff.
    watchdog_base_backoff: float = 0.25
    watchdog_max_backoff: float = 15.0
    watchdog_stable_after: float = 30.0    # uptime that resets the backoff
    # --- Hot-path optimizations (DESIGN.md §9) ---------------------------
    # Semantics-preserving, so on by default: scans/lookups use the cache's
    # secondary indexes instead of O(n) select()/items() filters.
    use_cache_indexes: bool = True
    # Charged per candidate object a scan/lookup filters, so index on/off
    # is observable in simulated time, not just in lookup counters.
    scan_filter_per_object: float = 0.00002
    # Sharded dispatch: tenants hash to one of N worker shards, each with
    # its own dequeue critical section.  1 == the paper's serialized
    # syncer (the configuration every paper-fidelity benchmark uses).
    dispatch_shards: int = 1
    # Downward write batching: reconciler writes to the super apiserver
    # are coalesced into multi-op transactions.  max=1 disables batching.
    downward_batch_max: int = 1
    downward_batch_linger: float = 0.001   # wait to fill a batch (seconds)
    # --- HA / crash recovery (DESIGN.md §10) -----------------------------
    # Leader lease: the active replica renews every lease_renew_interval;
    # standbys retry at lease_retry_interval and take over once the lease
    # lapses.  MTTR ~= lease_duration + takeover scan, so these defaults
    # keep failover well under one scan_interval.
    lease_duration: float = 6.0
    lease_renew_interval: float = 2.0
    lease_retry_interval: float = 0.5
    lease_jitter: float = 0.2
    # Tenant control-plane durability: etcd snapshot cadence used by the
    # tenant operator for crash/restore (DESIGN.md §10.3).
    snapshot_interval: float = 15.0
    # --- Telemetry (DESIGN.md §11) ---------------------------------------
    # Max live PodTrace objects in the syncer's TraceStore; completed
    # traces beyond it are folded into compact records and evicted, so
    # chaos soaks don't leak memory while aggregates stay exact.  Set
    # above every paper experiment's pod count so full-fidelity traces
    # survive a whole benchmark run.
    trace_retention_cap: int = 50_000


@dataclass
class StorageDurability:
    """WAL + replication for control-plane stores (DESIGN.md §13).

    Defaults keep the seed's pure in-memory single store (no WAL, one
    replica), so the base RNG sequence and all paper-fidelity runs are
    byte-identical unless durability is opted into.
    """

    # Attach a write-ahead log to every control-plane store.  Implied by
    # replicas > 1 (replication streams WAL records).
    wal_enabled: bool = False
    # Store group size; 1 == the seed's single in-memory store.
    replicas: int = 1
    wal_segment_records: int = 512
    # 0 == fsync on every append (etcd default); > 0 batches fsyncs on a
    # timer and a kill -9 loses the un-synced tail.
    wal_fsync_interval: float = 0.0
    # Leader -> follower apply latency per record.
    replication_delay: float = 0.002
    # Store-group leader lease: snappier than the syncer's 6 s lease so
    # storage MTTR stays in the low seconds.
    lease_duration: float = 3.0
    lease_renew_interval: float = 1.0
    lease_retry_interval: float = 0.25
    lease_jitter: float = 0.2

    @property
    def replicated(self):
        return self.replicas > 1

    @property
    def durable(self):
        return self.wal_enabled or self.replicas > 1


@dataclass
class ApfTier:
    """One priority level of the APF admission layer (DESIGN.md §15).

    ``shares`` sets the level's slice of the apiserver's total seat pool;
    ``exempt`` levels (system traffic) bypass seats and queues entirely,
    like the upstream ``exempt`` priority level.
    """

    name: str
    shares: int
    queues: int = 8            # shuffle-shard queues inside the level
    hand_size: int = 2         # queues each flow may use
    queue_limit: int = 40      # per-queue depth before immediate 429
    queue_wait: float = 1.0    # max seconds queued before timeout 429
    exempt: bool = False
    # A level may borrow idle seats from the shared pool up to
    # ``borrow_cap_factor * nominal`` while total occupancy allows it.
    borrow_cap_factor: float = 2.0


@dataclass
class ApfConfig:
    """API Priority & Fairness admission for the super apiserver
    (DESIGN.md §15).

    Disabled by default: the seed's request path (coarse max-inflight
    only) stays byte-identical unless a run opts in.
    """

    enabled: bool = False
    # Concurrency seats split across non-exempt levels by shares.  Kept
    # below ApiServerLatency.max_inflight so APF, not the blunt inflight
    # cap, is the binding constraint when enabled.
    total_seats: int = 64
    default_tier: str = "standard"
    # Base of the server-computed Retry-After hint; scaled by queue
    # pressure at rejection time.  Clients add their own jitter.
    retry_after_base: float = 0.25
    retry_after_max: float = 5.0
    # Deterministic shuffle-shard dealing is keyed by this seed.
    shuffle_seed: int = 0
    tiers: tuple = field(default_factory=lambda: (
        ApfTier("system", shares=0, exempt=True),
        ApfTier("platinum", shares=50, queue_wait=2.0),
        ApfTier("standard", shares=35),
        ApfTier("free", shares=15, queue_wait=0.5, queue_limit=20,
                borrow_cap_factor=1.0),
    ))


@dataclass
class SwapperConfig:
    """Scale-to-zero autoscaler for tenant control planes (DESIGN.md §15).

    Disabled by default (paper-faithful: the swapper stays an opt-in
    ablation unless a run enables it).
    """

    enabled: bool = False
    idle_threshold: float = 60.0   # user-traffic silence before swap-out
    check_interval: float = 10.0
    swapout_latency: float = 0.4   # page-out window; a request cancels it
    cold_wake_latency: float = 0.8  # page-in from swap
    warm_wake_latency: float = 0.15  # page-in from the warm pool
    warm_pool: int = 8             # recently-swapped planes kept warm
    wake_concurrency: int = 32     # concurrent page-ins (I/O bound)
    wake_slo: float = 2.5          # p99 budget incl. wake-queue wait
    residual_fraction: float = 0.15


@dataclass
class KubeletLatency:
    """Real-node kubelet and runtimes."""

    sync_loop_reaction: float = 0.005
    runc_container_start: float = 0.8
    kata_sandbox_boot: float = 2.2     # guest VM boot
    kata_container_start: float = 0.9
    status_update: float = 0.002
    virtual_kubelet_ack: float = 0.7   # provider ack + status write-back


@dataclass
class NetworkLatency:
    """Data-plane costs for the enhanced kubeproxy experiment (§IV-E)."""

    grpc_round_trip: float = 0.004
    guest_iptable_update_per_rule: float = 0.0055
    host_iptable_update: float = 0.0008
    rule_scan_per_rule: float = 0.0001
    init_container_poll: float = 0.05


@dataclass
class MemoryModel:
    """Bytes attributed to cached objects (Fig. 10 bottom)."""

    # One tenant Pod occupies ~2 informer-cache copies totalling ~40 KB.
    object_size_factor: float = 21.0   # bytes per serialized character
    queue_entry_bytes: int = 96
    informer_overhead_bytes: int = 512


@dataclass
class LatencyConfig:
    """Bundle of all component latency models."""

    apiserver: ApiServerLatency = field(default_factory=ApiServerLatency)
    scheduler: SchedulerLatency = field(default_factory=SchedulerLatency)
    syncer: SyncerLatency = field(default_factory=SyncerLatency)
    kubelet: KubeletLatency = field(default_factory=KubeletLatency)
    network: NetworkLatency = field(default_factory=NetworkLatency)
    memory: MemoryModel = field(default_factory=MemoryModel)
    storage: StorageDurability = field(default_factory=StorageDurability)
    apf: ApfConfig = field(default_factory=ApfConfig)
    swapper: SwapperConfig = field(default_factory=SwapperConfig)

    def with_overrides(self, **sections):
        """Copy with some sections replaced, e.g. ``with_overrides(syncer=...)``."""
        return replace(self, **sections)


DEFAULT_CONFIG = LatencyConfig()
