"""Load generation for the paper's stress experiments (§IV) and the
scenario layer (DESIGN.md §14).

The generator creates large numbers of Pods "simultaneously in all tenant
control planes" (VC runs) or directly in the super cluster with one
submission thread per tenant (baseline runs).  The aggregate submission
rate is fixed regardless of tenant count, matching the paper's
observation that latency depends on the number of Pods, not tenants.

Beyond the paper's fixed patterns, :class:`TimedActions` executes a
pre-compiled open-loop action plan — ``(time, op, index)`` tuples from a
``repro.scenarios`` traffic shape — so declarative scenarios (diurnal
curves, flash crowds, rolling upgrades) all drive the same generator.

Determinism: every draw the generator makes (pacing jitter, think-time
jitter) comes from the per-simulation RNG (``sim.rng``) and every
timestamp from the simulation clock (``sim.now``) — never from the
``random`` module's global state or the wall clock — so two same-seed
runs submit identical workloads at identical times.
"""

from repro.apiserver.errors import ApiError
from repro.objects import make_pod


class TenantLoadPattern:
    """How one tenant submits its Pods.

    ``mode="paced"``  — sequential creates at ``rate`` Pods/s;
    ``mode="burst"``  — all creates issued concurrently (greedy tenant);
    ``mode="sequential"`` — create, wait for server ack, create next
    (the paper's "regular user" in the fairness experiment).

    ``jitter`` perturbs each paced interval by uniform ``[-jitter,
    +jitter]`` seconds and ``think`` inserts a fixed pause after each
    sequential ack; jitter draws come from the per-sim RNG so patterns
    stay seed-deterministic.
    """

    def __init__(self, count, mode="paced", rate=10.0, namespace="default",
                 name_prefix="load", jitter=0.0, think=0.0):
        self.count = count
        self.mode = mode
        self.rate = rate
        self.namespace = namespace
        self.name_prefix = name_prefix
        self.jitter = jitter
        self.think = think


class TimedActions:
    """A pre-compiled open-loop plan: ``(time, op, index)`` actions.

    ``op`` is ``"create"`` (pod ``{prefix}-{index:05d}``) or
    ``"replace"`` (delete the index's current revision, create the
    next — the rolling-upgrade primitive).  ``concurrent=True`` fires
    each action without waiting for the previous ack (flash-crowd /
    burst semantics); otherwise actions are issued in order, each
    waiting for the server.  Action times are absolute simulation
    offsets from the moment the plan starts running.
    """

    def __init__(self, actions, namespace="default", name_prefix="load",
                 concurrent=False, labels=None):
        self.actions = list(actions)
        self.namespace = namespace
        self.name_prefix = name_prefix
        self.concurrent = concurrent
        self.labels = labels

    def __len__(self):
        return len(self.actions)


class LoadGenerator:
    """Drives pod creation against tenant control planes or the super."""

    def __init__(self, sim):
        self.sim = sim
        self.submitted = 0
        self.deleted = 0
        self.replaced = 0
        self.errors = 0
        self.first_submit = None
        self.last_submit = None

    # ------------------------------------------------------------------
    # Submission drivers
    # ------------------------------------------------------------------

    def run_tenant_load(self, client, pattern):
        """Coroutine: submit one tenant's Pods per its pattern."""
        if pattern.mode == "burst":
            done = []
            for index in range(pattern.count):
                self.sim.spawn(
                    self._create_one(client, pattern, index, done),
                    name=f"burst-{pattern.name_prefix}-{index}")
            while len(done) < pattern.count:
                yield self.sim.timeout(0.05)
            return
        interval = 1.0 / pattern.rate if pattern.rate else 0.0
        for index in range(pattern.count):
            yield from self._create_one(client, pattern, index, None)
            if pattern.mode == "paced" and interval:
                # Per-sim RNG: pacing jitter replays per seed.
                delay = interval + (
                    self.sim.rng.uniform(-pattern.jitter, pattern.jitter)
                    if pattern.jitter else 0.0)
                if delay > 0:
                    yield self.sim.timeout(delay)
            elif pattern.mode == "sequential" and pattern.think:
                yield self.sim.timeout(pattern.think)

    def run_timed(self, client, plan):
        """Coroutine: execute a :class:`TimedActions` plan.

        Waits are computed against absolute action times (``time -
        sim.now``), never by accumulating deltas, so long plans don't
        drift.  Late actions (an earlier ack outlasted the gap) fire
        immediately in plan order.
        """
        start = self.sim.now
        revisions = {}
        done = []
        spawned = 0
        for when, op, index in plan.actions:
            delay = (start + when) - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            if plan.concurrent:
                self.sim.spawn(
                    self._run_action(client, plan, op, index, revisions,
                                     done),
                    name=f"timed-{plan.name_prefix}-{op}-{index}")
                spawned += 1
            else:
                yield from self._run_action(client, plan, op, index,
                                            revisions, None)
        while len(done) < spawned:
            yield self.sim.timeout(0.05)

    def run_all(self, jobs):
        """Coroutine: run (client, plan) jobs concurrently; wait for all.

        Each plan may be a :class:`TenantLoadPattern` or a
        :class:`TimedActions`.
        """
        processes = []
        for i, (client, plan) in enumerate(jobs):
            if isinstance(plan, TimedActions):
                coroutine = self.run_timed(client, plan)
            else:
                coroutine = self.run_tenant_load(client, plan)
            processes.append(self.sim.spawn(coroutine, name=f"loadgen-{i}"))
        yield self.sim.all_of(processes)

    # ------------------------------------------------------------------
    # Single-action helpers
    # ------------------------------------------------------------------

    def _pod_name(self, plan, index, revision):
        base = f"{plan.name_prefix}-{index:05d}"
        return base if revision == 0 else f"{base}-r{revision}"

    def _run_action(self, client, plan, op, index, revisions, done):
        try:
            if op == "create":
                yield from self._submit(client, plan,
                                        self._pod_name(plan, index, 0))
            elif op == "replace":
                revision = revisions.get(index, 0)
                old_name = self._pod_name(plan, index, revision)
                revisions[index] = revision + 1
                try:
                    yield from client.delete("pods", old_name,
                                             namespace=plan.namespace)
                    self.deleted += 1
                except ApiError:
                    # The old revision never landed (chaos window); the
                    # upgrade still rolls the new one out.
                    self.errors += 1
                yield from self._submit(
                    client, plan, self._pod_name(plan, index, revision + 1))
                self.replaced += 1
            else:
                raise ValueError(f"unknown plan op: {op!r}")
        finally:
            if done is not None:
                done.append(index)

    def _submit(self, client, plan, name):
        pod = make_pod(name, namespace=plan.namespace,
                       labels=dict(getattr(plan, "labels", None) or
                                   {"app": plan.name_prefix}))
        try:
            yield from client.create(pod)
            self.submitted += 1
            if self.first_submit is None:
                self.first_submit = self.sim.now
            self.last_submit = self.sim.now
        except ApiError:
            self.errors += 1

    def _create_one(self, client, pattern, index, done):
        try:
            yield from self._submit(client, pattern,
                                    f"{pattern.name_prefix}-{index:05d}")
        finally:
            if done is not None:
                done.append(index)


def even_split(total, parts):
    """Split ``total`` into ``parts`` near-equal integers summing to total."""
    base, remainder = divmod(total, parts)
    return [base + (1 if i < remainder else 0) for i in range(parts)]
