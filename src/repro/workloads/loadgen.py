"""Load generation for the paper's stress experiments (§IV).

The generator creates large numbers of Pods "simultaneously in all tenant
control planes" (VC runs) or directly in the super cluster with one
submission thread per tenant (baseline runs).  The aggregate submission
rate is fixed regardless of tenant count, matching the paper's
observation that latency depends on the number of Pods, not tenants.
"""

from repro.apiserver.errors import ApiError
from repro.objects import make_pod


class TenantLoadPattern:
    """How one tenant submits its Pods.

    ``mode="paced"``  — sequential creates at ``rate`` Pods/s;
    ``mode="burst"``  — all creates issued concurrently (greedy tenant);
    ``mode="sequential"`` — create, wait for server ack, create next
    (the paper's "regular user" in the fairness experiment).
    """

    def __init__(self, count, mode="paced", rate=10.0, namespace="default",
                 name_prefix="load"):
        self.count = count
        self.mode = mode
        self.rate = rate
        self.namespace = namespace
        self.name_prefix = name_prefix


class LoadGenerator:
    """Drives pod creation against tenant control planes or the super."""

    def __init__(self, sim):
        self.sim = sim
        self.submitted = 0
        self.errors = 0
        self.first_submit = None
        self.last_submit = None

    # ------------------------------------------------------------------
    # Submission drivers
    # ------------------------------------------------------------------

    def run_tenant_load(self, client, pattern):
        """Coroutine: submit one tenant's Pods per its pattern."""
        if pattern.mode == "burst":
            done = []
            for index in range(pattern.count):
                self.sim.spawn(
                    self._create_one(client, pattern, index, done),
                    name=f"burst-{pattern.name_prefix}-{index}")
            while len(done) < pattern.count:
                yield self.sim.timeout(0.05)
            return
        interval = 1.0 / pattern.rate if pattern.rate else 0.0
        for index in range(pattern.count):
            yield from self._create_one(client, pattern, index, None)
            if pattern.mode == "paced" and interval:
                yield self.sim.timeout(interval)

    def _create_one(self, client, pattern, index, done):
        pod = make_pod(f"{pattern.name_prefix}-{index:05d}",
                       namespace=pattern.namespace,
                       labels={"app": pattern.name_prefix})
        try:
            yield from client.create(pod)
            self.submitted += 1
            if self.first_submit is None:
                self.first_submit = self.sim.now
            self.last_submit = self.sim.now
        except ApiError:
            self.errors += 1
        finally:
            if done is not None:
                done.append(index)

    def run_all(self, jobs):
        """Coroutine: run (client, pattern) jobs concurrently; wait for all."""
        processes = [
            self.sim.spawn(self.run_tenant_load(client, pattern),
                           name=f"loadgen-{i}")
            for i, (client, pattern) in enumerate(jobs)
        ]
        yield self.sim.all_of(processes)


def even_split(total, parts):
    """Split ``total`` into ``parts`` near-equal integers summing to total."""
    base, remainder = divmod(total, parts)
    return [base + (1 if i < remainder else 0) for i in range(parts)]
