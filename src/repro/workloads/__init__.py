"""Workload generation and stress harnesses for the evaluation."""

from .loadgen import (
    LoadGenerator,
    TenantLoadPattern,
    TimedActions,
    even_split,
)
from .stress import (
    StressResult,
    run_baseline_stress,
    run_fairness_stress,
    run_vc_stress,
)

__all__ = [
    "LoadGenerator",
    "StressResult",
    "TenantLoadPattern",
    "TimedActions",
    "even_split",
    "run_baseline_stress",
    "run_fairness_stress",
    "run_vc_stress",
]
