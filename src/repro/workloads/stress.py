"""Stress harness: the paper's §IV experiments as reusable functions.

``run_vc_stress``        — Pods created through tenant control planes
                           (the VirtualCluster pipeline);
``run_baseline_stress``  — the same load submitted directly to the super
                           cluster (the paper's baseline);
``run_fairness_stress``  — the Fig. 11 greedy/regular tenant mix.

Each returns a :class:`StressResult` with everything needed to regenerate
the paper's figures: per-Pod creation times, phase breakdowns, bucket
counts, throughput, and syncer resource usage.
"""

from dataclasses import dataclass, field

from repro.core import VirtualClusterEnv

from .loadgen import LoadGenerator, TenantLoadPattern, even_split


@dataclass
class StressResult:
    mode: str
    num_pods: int
    num_tenants: int
    creation_times: list = field(default_factory=list)
    duration: float = 0.0
    throughput: float = 0.0
    phase_means: dict = None
    phase_buckets: dict = None
    cpu_seconds: float = 0.0
    peak_memory_bytes: int = 0
    wall_start: float = 0.0
    wall_end: float = 0.0
    per_tenant_mean: dict = None
    syncer_stats: dict = None
    # Full registry + span-aggregate export (Telemetry.snapshot()), taken
    # at the end of the run.
    telemetry: dict = None

    @property
    def mean(self):
        if not self.creation_times:
            return 0.0
        return sum(self.creation_times) / len(self.creation_times)

    def percentile(self, pct):
        if not self.creation_times:
            return 0.0
        ordered = sorted(self.creation_times)
        index = min(len(ordered) - 1,
                    max(0, round(pct / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def histogram(self, bucket_width=1.0, max_buckets=30):
        """(bucket_start, count) pairs of creation times (Fig. 7)."""
        counts = {}
        for value in self.creation_times:
            bucket = min(int(value // bucket_width), max_buckets - 1)
            counts[bucket] = counts.get(bucket, 0) + 1
        return sorted((bucket * bucket_width, count)
                      for bucket, count in counts.items())


def _build_env(num_tenants, dws_workers, uws_workers, fair, seed,
               num_nodes, scan_interval, config=None, workers=None):
    env = VirtualClusterEnv(
        seed=seed, config=config, num_virtual_nodes=num_nodes,
        fair_queuing=fair, dws_workers=dws_workers,
        uws_workers=uws_workers, scan_interval=scan_interval,
        workers=workers)
    env.bootstrap()
    return env


def run_vc_stress(num_pods, num_tenants, dws_workers=20, uws_workers=100,
                  fair=True, submission_rate=1000.0, num_nodes=100,
                  seed=0, timeout=600.0, scan_interval=60.0, env=None,
                  keep_env=False, config=None, workers=None):
    """The VirtualCluster stress run (Figs. 7-10 VC series).

    ``workers`` selects the parallel execution backend
    (``Simulation(workers=N)``); results are byte-identical for any
    value — see DESIGN.md §16.
    """
    env = env or _build_env(num_tenants, dws_workers, uws_workers, fair,
                            seed, num_nodes, scan_interval, config=config,
                            workers=workers)

    tenants = []

    def create_tenants():
        for index in range(num_tenants):
            tenant = yield from env.create_tenant(f"tenant-{index:03d}")
            tenants.append(tenant)

    env.run_coroutine(create_tenants(), name="create-tenants")
    env.run_for(1.0)  # let informers settle

    generator = LoadGenerator(env.sim)
    counts = even_split(num_pods, num_tenants)
    per_tenant_rate = submission_rate / num_tenants
    jobs = [
        (tenant.client,
         TenantLoadPattern(count, mode="paced", rate=per_tenant_rate,
                           name_prefix=f"p{i:03d}"))
        for i, (tenant, count) in enumerate(zip(tenants, counts))
    ]

    start = env.sim.now
    env.run_coroutine(generator.run_all(jobs), name="loadgen")

    def all_done():
        return env.syncer.trace_store.completed_count >= num_pods

    env.run_until(all_done, timeout=timeout)
    end = env.sim.now

    traces = env.syncer.trace_store
    result = StressResult(
        mode="virtualcluster",
        num_pods=num_pods,
        num_tenants=num_tenants,
        creation_times=traces.creation_times(),
        duration=end - start,
        throughput=num_pods / (end - start) if end > start else 0.0,
        phase_means=traces.mean_phase_breakdown(),
        phase_buckets=traces.phase_bucket_counts(),
        cpu_seconds=env.syncer.cpu.seconds,
        peak_memory_bytes=env.syncer.mem.peak,
        wall_start=start,
        wall_end=end,
        per_tenant_mean=traces.mean_creation_time_by_tenant(),
        syncer_stats=env.syncer.stats(),
        telemetry=env.sim.telemetry.snapshot(),
    )
    if keep_env:
        result.env = env
    return result


def run_baseline_stress(num_pods, num_threads, submission_rate=1000.0,
                        num_nodes=100, seed=0, timeout=600.0, config=None):
    """The baseline: the same load submitted directly to the super cluster.

    One namespace per submission thread (as one would per tenant), with
    the same aggregate submission rate as the VC run.
    """
    env = VirtualClusterEnv(seed=seed, config=config,
                            num_virtual_nodes=num_nodes)
    env.bootstrap()
    admin = env.super_admin_client()

    namespaces = [f"load-{i:03d}" for i in range(num_threads)]

    def make_namespaces():
        from repro.objects import make_namespace

        for namespace in namespaces:
            yield from admin.create(make_namespace(namespace))

    env.run_coroutine(make_namespaces(), name="baseline-ns")

    generator = LoadGenerator(env.sim)
    counts = even_split(num_pods, num_threads)
    per_thread_rate = submission_rate / num_threads
    jobs = [
        (env.super_admin_client(),
         TenantLoadPattern(count, mode="paced", rate=per_thread_rate,
                           namespace=namespace, name_prefix=f"b{i:03d}"))
        for i, (namespace, count) in enumerate(zip(namespaces, counts))
    ]

    start = env.sim.now
    env.run_coroutine(generator.run_all(jobs), name="baseline-loadgen")

    pods_cache = env.syncer.super_informer("pods").cache

    def all_ready():
        ready = 0
        for pod in pods_cache.items():
            if (pod.metadata.namespace or "").startswith("load-") \
                    and pod.status.is_ready:
                ready += 1
        return ready >= num_pods

    env.run_until(all_ready, timeout=timeout, poll=0.25)
    end = env.sim.now

    creation_times = []
    for pod in pods_cache.items():
        if not (pod.metadata.namespace or "").startswith("load-"):
            continue
        condition = pod.status.get_condition("Ready")
        if condition is None or condition.status != "True":
            continue
        ready_at = condition.last_transition_time
        created_at = pod.metadata.creation_timestamp
        if ready_at is not None and created_at is not None:
            creation_times.append(ready_at - created_at)

    return StressResult(
        mode="baseline",
        num_pods=num_pods,
        num_tenants=num_threads,
        creation_times=creation_times,
        duration=end - start,
        throughput=num_pods / (end - start) if end > start else 0.0,
        wall_start=start,
        wall_end=end,
        telemetry=env.sim.telemetry.snapshot(),
    )


def run_fairness_stress(num_greedy=10, num_regular=40, greedy_pods=900,
                        regular_pods=10, fair=True, num_nodes=100, seed=0,
                        timeout=1200.0, config=None):
    """The Fig. 11 experiment: greedy bursts vs regular sequential users."""
    num_tenants = num_greedy + num_regular
    env = _build_env(num_tenants, 20, 100, fair, seed, num_nodes, 60.0,
                     config=config)

    tenants = []

    def create_tenants():
        for index in range(num_tenants):
            tenant = yield from env.create_tenant(f"tenant-{index:03d}")
            tenants.append(tenant)

    env.run_coroutine(create_tenants(), name="create-tenants")
    env.run_for(1.0)

    greedy = tenants[:num_greedy]
    regular = tenants[num_greedy:]
    generator = LoadGenerator(env.sim)
    jobs = []
    for i, tenant in enumerate(greedy):
        jobs.append((tenant.client,
                     TenantLoadPattern(greedy_pods, mode="burst",
                                       name_prefix=f"g{i:03d}")))
    for i, tenant in enumerate(regular):
        jobs.append((tenant.client,
                     TenantLoadPattern(regular_pods, mode="sequential",
                                       name_prefix=f"r{i:03d}")))

    total = num_greedy * greedy_pods + num_regular * regular_pods
    start = env.sim.now
    env.run_coroutine(generator.run_all(jobs), name="fairness-loadgen")
    env.run_until(
        lambda: env.syncer.trace_store.completed_count >= total,
        timeout=timeout, poll=0.5)
    end = env.sim.now

    per_tenant = env.syncer.trace_store.mean_creation_time_by_tenant()
    greedy_keys = {tenant.key for tenant in greedy}
    result = StressResult(
        mode=f"fairness-{'on' if fair else 'off'}",
        num_pods=total,
        num_tenants=num_tenants,
        creation_times=env.syncer.trace_store.creation_times(),
        duration=end - start,
        throughput=total / (end - start) if end > start else 0.0,
        per_tenant_mean=per_tenant,
        syncer_stats=env.syncer.stats(),
        telemetry=env.sim.telemetry.snapshot(),
    )
    result.greedy_means = {key: value for key, value in per_tenant.items()
                           if key in greedy_keys}
    result.regular_means = {key: value for key, value in per_tenant.items()
                            if key not in greedy_keys}
    return result
