"""AST determinism linter (rules D001–D006).

Two passes per module:

1. a *collect* pass resolves imports, infers which local names and
   ``self.X`` attributes are set-typed (for D003), and records which
   identifiers feed heap priorities or timeout delays (for D005);
2. a *check* pass walks expressions and emits findings.

The linter is deliberately a static approximation: it prefers precise,
high-signal patterns (set literals, ``set()`` construction, attributes
initialized as sets in the same class) over whole-program type
inference, and every rule has an in-place escape hatch
(``# repro: allow[DXXX]``) plus a file-scoped allowlist for the
irreducible residue.
"""

import ast
import io
import re
import tokenize
from pathlib import Path

from .rules import RULES, SUPPRESSIBLE, Finding

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")

# Calls whose dotted name ends with one of these are wall-clock reads.
_WALLCLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.sleep",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

# Consumers for which input order is provably irrelevant (D003 exempt).
_ORDER_INSENSITIVE = {
    "sorted", "sum", "len", "min", "max", "any", "all", "set", "frozenset",
    "Counter",
}

# Wrappers that materialize an ordered sequence from their argument's
# iteration order (D003 sinks when fed a set).
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate", "iter"}

_HASH_FUNCS = {
    "zlib.crc32", "zlib.adler32", "binascii.crc32",
    "hashlib.md5", "hashlib.sha1", "hashlib.sha256", "hashlib.sha512",
    "hashlib.blake2b", "hashlib.blake2s",
}

_REPR_METHODS = {"__repr__", "__str__", "__format__"}


def _dotted(node):
    """The dotted name of an expression (``a.b.c``), or None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _target_key(node):
    """A scope-local key for an assignment target: name or ``self.attr``."""
    if isinstance(node, ast.Name):
        return node.id
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return f"self.{node.attr}"
    return None


class _ModuleFacts(ast.NodeVisitor):
    """Collect pass: imports, set-typed names, priority identifiers."""

    def __init__(self):
        # alias -> real module ("import numpy as np" -> {"np": "numpy"}).
        self.module_aliases = {}
        # bare name -> "module.name" ("from time import time").
        self.name_imports = {}
        # scope id -> set of keys known set-typed ("x", "self._watches").
        self.set_names = {}
        # identifiers whose value feeds a heap priority / timeout delay.
        self.priority_idents = set()
        self._scope_stack = [("module",)]

    # -- scopes --------------------------------------------------------

    def _scope(self):
        return self._scope_stack[-1]

    def _class_scope(self):
        for scope in reversed(self._scope_stack):
            if scope[0] == "class":
                return scope
        return None

    def visit_ClassDef(self, node):
        self._scope_stack.append(("class", node.name, id(node)))
        self.generic_visit(node)
        self._scope_stack.pop()

    def _visit_func(self, node):
        self._scope_stack.append(("func", node.name, id(node)))
        self.generic_visit(node)
        self._scope_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    # -- imports -------------------------------------------------------

    def visit_Import(self, node):
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = \
                alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        if node.module:
            for alias in node.names:
                self.name_imports[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- set-typed inference -------------------------------------------

    def _literal_set_expr(self, node):
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _record_set(self, target):
        key = _target_key(target)
        if key is None:
            return
        if key.startswith("self."):
            scope = self._class_scope()
            if scope is None:
                return
        else:
            scope = self._scope()
        self.set_names.setdefault(scope, set()).add(key)

    def visit_Assign(self, node):
        if self._literal_set_expr(node.value):
            for target in node.targets:
                self._record_set(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        if node.value is not None and self._literal_set_expr(node.value):
            self._record_set(node.target)
        self.generic_visit(node)

    # -- priority identifiers (D005) -----------------------------------

    def _idents_in(self, node):
        out = set()
        for sub in ast.walk(node):
            key = _target_key(sub)
            if key is not None:
                out.add(key)
            elif isinstance(sub, ast.Attribute):
                out.add(sub.attr)
        return out

    def visit_Call(self, node):
        dotted = _dotted(node.func)
        if dotted and (dotted.endswith("heappush")
                       or dotted.endswith("heapreplace")
                       or dotted.endswith("heappushpop")):
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Tuple) \
                    and node.args[1].elts:
                self.priority_idents |= self._idents_in(node.args[1].elts[0])
        elif dotted and (dotted.endswith(".timeout")
                         or dotted.endswith("._schedule")):
            if node.args:
                self.priority_idents |= self._idents_in(node.args[0])
        self.generic_visit(node)


class _Checker(ast.NodeVisitor):
    """Check pass: emits findings using the collected module facts."""

    def __init__(self, path, facts):
        self.path = path
        self.facts = facts
        self.findings = []
        self._scope_stack = [("module",)]
        self._func_stack = []
        # Nodes proven order-insensitive by their consumer (D003 exempt).
        self._exempt = set()

    def _emit(self, node, code, message):
        self.findings.append(Finding(self.path, node.lineno, node.col_offset,
                                     code, message))

    # -- scope bookkeeping (must mirror the collect pass) --------------

    def visit_ClassDef(self, node):
        self._scope_stack.append(("class", node.name, id(node)))
        self.generic_visit(node)
        self._scope_stack.pop()

    def _visit_func(self, node):
        self._scope_stack.append(("func", node.name, id(node)))
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()
        self._scope_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    # -- type resolution helpers ---------------------------------------

    def _resolve_call(self, func):
        """Dotted name of a call target with import aliases applied."""
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.facts.name_imports and not rest:
            return self.facts.name_imports[head]
        if head in self.facts.module_aliases:
            module = self.facts.module_aliases[head]
            return f"{module}.{rest}" if rest else module
        return dotted

    def _is_set_like(self, node, depth=0):
        if depth > 4:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            resolved = self._resolve_call(node.func)
            if resolved in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                    "union", "intersection", "difference",
                    "symmetric_difference"):
                return self._is_set_like(node.func.value, depth + 1)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (self._is_set_like(node.left, depth + 1)
                    or self._is_set_like(node.right, depth + 1))
        key = _target_key(node)
        if key is None:
            return False
        if key.startswith("self."):
            for scope in reversed(self._scope_stack):
                if scope[0] == "class":
                    return key in self.facts.set_names.get(scope, ())
            return False
        for scope in reversed(self._scope_stack):
            if key in self.facts.set_names.get(scope, ()):
                return True
            if scope[0] == "func":
                break  # locals don't leak out of the defining function
        return key in self.facts.set_names.get(("module",), ())

    def _flag_set_iteration(self, iter_node, where):
        if id(iter_node) in self._exempt:
            return
        if self._is_set_like(iter_node):
            name = _dotted(iter_node) or "<set expression>"
            self._emit(iter_node, "D003",
                       f"iteration over unordered set {name!r} {where}; "
                       f"wrap in sorted(...) or use an insertion-ordered "
                       f"dict")

    # -- statements / expressions --------------------------------------

    def visit_For(self, node):
        self._flag_set_iteration(node.iter, "in a for loop")
        self.generic_visit(node)

    def _visit_comp(self, node, order_sensitive):
        for index, comp in enumerate(node.generators):
            if order_sensitive:
                self._flag_set_iteration(comp.iter, "in a comprehension")
            elif index > 0:
                # Inner generators of an order-insensitive comprehension
                # still only reorder an unordered result: exempt too.
                self._exempt.add(id(comp.iter))
        self.generic_visit(node)

    def visit_ListComp(self, node):
        self._visit_comp(node, order_sensitive=id(node) not in self._exempt)

    def visit_GeneratorExp(self, node):
        self._visit_comp(node, order_sensitive=id(node) not in self._exempt)

    def visit_DictComp(self, node):
        # Last-wins on duplicate keys makes dict building order-sensitive.
        self._visit_comp(node, order_sensitive=True)

    def visit_SetComp(self, node):
        self._visit_comp(node, order_sensitive=False)

    def visit_AugAssign(self, node):
        if isinstance(node.op, (ast.Add, ast.Sub)):
            key = _target_key(node.target)
            ident = key.split(".", 1)[-1] if key else None
            if ident and ident in self.facts.priority_idents \
                    and not isinstance(node.value, ast.Constant):
                self._emit(node, "D005",
                           f"float accumulation on {ident!r}, which feeds "
                           f"an event priority or timeout delay; compute "
                           f"it absolutely (base + k*step) instead")
        self.generic_visit(node)

    def visit_Call(self, node):
        resolved = self._resolve_call(node.func)

        # D003 consumer analysis: mark arguments of order-insensitive
        # consumers exempt *before* descending into them.
        if resolved in _ORDER_INSENSITIVE:
            for arg in node.args:
                self._exempt.add(id(arg))
        elif resolved in _ORDER_SENSITIVE_WRAPPERS:
            for arg in node.args:
                if id(node) not in self._exempt:
                    self._flag_set_iteration(
                        arg, f"materialized by {resolved}(...)")
                else:
                    self._exempt.add(id(arg))
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr == "join" and node.args):
            self._flag_set_iteration(node.args[0], "joined into a string")

        # D001 wall clock.
        if resolved is not None and any(
                resolved == pattern or resolved.endswith("." + pattern)
                for pattern in _WALLCLOCK):
            self._emit(node, "D001",
                       f"wall-clock call {resolved}(); use the "
                       f"simulation clock (sim.now / sim.timeout)")

        # D002 module-level randomness.
        if resolved is not None and resolved.startswith("random.") \
                and resolved.count(".") == 1:
            attr = resolved.split(".", 1)[1]
            if attr == "SystemRandom":
                self._emit(node, "D002",
                           "random.SystemRandom is OS-entropy seeded and "
                           "never reproducible; use random.Random(seed)")
            elif attr != "Random":
                self._emit(node, "D002",
                           f"module-level random.{attr}() uses hidden "
                           f"global state; draw from a seeded "
                           f"random.Random owned by the sim or engine")

        # D004 identity.
        if isinstance(node.func, ast.Name) and node.func.id == "id" \
                and len(node.args) == 1:
            if not (self._func_stack
                    and self._func_stack[-1] in _REPR_METHODS):
                self._emit(node, "D004",
                           "id(obj) is an allocation address; not stable "
                           "across processes (allowed only in __repr__/"
                           "__str__/__format__)")
        for keyword in node.keywords:
            if keyword.arg == "key" and isinstance(keyword.value, ast.Name) \
                    and keyword.value.id == "id":
                self._emit(node, "D004",
                           "key=id orders by allocation address; sort by "
                           "a stable attribute instead")

        # D006 non-canonical hash inputs.
        if resolved in _HASH_FUNCS or (
                resolved is not None and resolved.startswith("hashlib.")):
            for arg in node.args:
                bad = self._non_canonical_bytes(arg)
                if bad:
                    self._emit(node, "D006",
                               f"hash input built from {bad}; hash "
                               f"canonical bytes (validated str .encode() "
                               f"or explicit serialization) so routing/"
                               f"digests are process-independent")
        if isinstance(node.func, ast.Attribute) and node.func.attr == \
                "update" and node.args and resolved is None:
            # h.update(...) on a hashlib object can't be resolved
            # statically; still scan the argument for identity leaks.
            bad = self._non_canonical_bytes(node.args[0])
            if bad:
                self._emit(node, "D006",
                           f"hash update input built from {bad}; hash "
                           f"canonical bytes instead")

        self.generic_visit(node)

    def _non_canonical_bytes(self, node):
        """Why a hash-input expression is process-dependent, or None."""
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            if isinstance(sub.func, ast.Name):
                if sub.func.id in ("repr", "id", "hash"):
                    return f"{sub.func.id}(...)"
                if sub.func.id == "str" and sub.args and not isinstance(
                        sub.args[0], ast.Constant):
                    return "str(<non-literal>) (falls back to the default "\
                           "repr with a memory address for plain objects)"
            if isinstance(sub, ast.JoinedStr):
                for value in sub.values:
                    if isinstance(value, ast.FormattedValue) and \
                            value.conversion == 114:  # !r
                        return "an f-string {...!r} conversion"
        return None


# ----------------------------------------------------------------------
# Suppressions, allowlist, driver
# ----------------------------------------------------------------------


def parse_suppressions(source, path):
    """Per-line ``# repro: allow[...]`` codes plus D000s for bad codes.

    Only real comment tokens count — the syntax can be *mentioned* in a
    docstring or string literal without being a suppression.  Returns
    ``(suppressions, errors)`` where ``suppressions`` maps line number
    -> set of rule codes and ``errors`` is a list of D000 findings for
    unknown codes.
    """
    suppressions = {}
    errors = []
    try:
        comments = [
            (token.start[0], token.start[1], token.string)
            for token in tokenize.generate_tokens(
                io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        comments = []
    for lineno, col, text in comments:
        match = _ALLOW_RE.search(text)
        if not match:
            continue
        codes = {code.strip() for code in match.group(1).split(",")
                 if code.strip()}
        unknown = sorted(code for code in codes if code not in SUPPRESSIBLE)
        for code in unknown:
            errors.append(Finding(
                path, lineno, col, "D000",
                f"suppression names unknown rule code {code!r} "
                f"(known: {', '.join(sorted(SUPPRESSIBLE))})"))
        known = codes - set(unknown)
        if known:
            suppressions[lineno] = known
    return suppressions, errors


def load_allowlist(path):
    """Parse the committed allowlist.

    Format (one entry per line)::

        <path-suffix>  <rule-code>  <justification...>

    Blank lines and ``#`` comments are ignored.  An entry allowlists
    every finding of that rule in files whose path ends with the
    suffix; the justification is mandatory so the file stays a report,
    not a mute button.
    """
    entries = []
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split(None, 2)
        if len(parts) < 3:
            raise ValueError(
                f"{path}:{lineno}: allowlist entry needs "
                f"'<path> <rule> <justification>', got {stripped!r}")
        suffix, code, justification = parts
        if code not in SUPPRESSIBLE:
            raise ValueError(
                f"{path}:{lineno}: unknown rule code {code!r}")
        entries.append((suffix, code, justification))
    return entries


class LintResult:
    """Findings bucketed by status, plus strict-mode bookkeeping."""

    def __init__(self):
        self.active = []
        self.suppressed = []
        self.allowlisted = []
        self.stale = []          # D000 findings (strict mode)
        self.files_checked = 0

    @property
    def ok(self):
        return not self.active and not self.stale

    def all_findings(self):
        return self.active + self.stale + self.suppressed + self.allowlisted

    def summary(self):
        return (f"{self.files_checked} files checked: "
                f"{len(self.active)} finding(s), "
                f"{len(self.stale)} stale/invalid suppression(s), "
                f"{len(self.suppressed)} suppressed, "
                f"{len(self.allowlisted)} allowlisted")


def lint_source(source, path):
    """Lint one module's source text; returns raw findings (no
    suppression handling — see :func:`lint_paths`)."""
    tree = ast.parse(source, filename=path)
    facts = _ModuleFacts()
    facts.visit(tree)
    checker = _Checker(path, facts)
    checker.visit(tree)
    return checker.findings


def _iter_py_files(paths):
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(paths, allowlist=(), strict=False):
    """Lint files/trees; returns a :class:`LintResult`.

    ``allowlist`` is a list of ``(path_suffix, code, justification)``
    entries from :func:`load_allowlist`.  ``strict`` also fails
    suppressions that no longer match a finding and allowlist entries
    that no longer match any file.
    """
    result = LintResult()
    used_allowlist = set()
    for file_path in _iter_py_files(paths):
        source = file_path.read_text()
        rel = file_path.as_posix()
        result.files_checked += 1
        findings = lint_source(source, rel)
        suppressions, errors = parse_suppressions(source, rel)
        result.stale.extend(errors)
        used_suppressions = set()
        for finding in findings:
            codes = suppressions.get(finding.line, ())
            if finding.code in codes:
                finding.status = "suppressed"
                used_suppressions.add((finding.line, finding.code))
                result.suppressed.append(finding)
                continue
            allow = next(
                (entry for entry in allowlist
                 if rel.endswith(entry[0]) and finding.code == entry[1]),
                None)
            if allow is not None:
                finding.status = "allowlisted"
                used_allowlist.add(allow)
                result.allowlisted.append(finding)
                continue
            result.active.append(finding)
        if strict:
            # Staleness is scoped to the pack this tool owns: C-rule
            # suppressions belong to repro.analysis.staticcheck, which
            # runs its own strict check over them.
            for lineno, codes in sorted(suppressions.items()):
                for code in sorted(codes):
                    if not code.startswith("D"):
                        continue
                    if (lineno, code) not in used_suppressions:
                        result.stale.append(Finding(
                            rel, lineno, 0, "D000",
                            f"stale suppression: no {code} finding on "
                            f"this line (remove the allow comment)"))
    if strict:
        for entry in allowlist:
            if not entry[1].startswith("D"):
                continue
            if entry not in used_allowlist:
                result.stale.append(Finding(
                    entry[0], 0, 0, "D000",
                    f"stale allowlist entry: no {entry[1]} finding "
                    f"matches {entry[0]!r}"))
    result.active.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    result.stale.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result


def format_report(result, verbose=False):
    lines = [finding.format() for finding in result.active]
    lines += [finding.format() for finding in result.stale]
    if verbose:
        lines += [f"{finding.format()} [{finding.status}]"
                  for finding in result.suppressed + result.allowlisted]
    lines.append(result.summary())
    for finding in result.active:
        rule = RULES.get(finding.code)
        if rule:
            lines.append(f"  {finding.code}: {rule.title}")
            break
    return "\n".join(lines)
