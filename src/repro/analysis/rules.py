"""The analysis rule catalog: determinism (D-pack) and concurrency
(C-pack) rules.

Each D-rule names one mechanism by which a code path can make a
scheduling-visible decision that is not a pure function of the
simulation seed — exactly the failures that silently break the repo's
byte-identical-convergence and chaos-replay claims.  They are checked
per-module by :mod:`repro.analysis.linter`.

Each C-rule names one concurrency or protocol hazard that is visible
in the source but only *manifests* under a particular schedule — the
bug classes the vector-clock race detector can catch only dynamically,
per-schedule, and that PR 9's kernel sweep fixed by hand.  They are
checked whole-program by :mod:`repro.analysis.staticcheck`, which
builds a project-wide symbol table and call graph first.

Suppression syntax
------------------

A finding can be acknowledged in place with a trailing comment::

    items = list(self._members)  # repro: allow[D003] snapshot, order unused

Multiple codes are comma-separated: ``# repro: allow[D003,D004]``.
Unknown codes are rejected (finding ``D000``), and under ``--strict``
a suppression on a line with no matching finding fails the run as
*stale*.  File-scoped exceptions live in the committed allowlist (see
:func:`repro.analysis.linter.load_allowlist`).
"""


class Rule:
    """One lint rule: code, title, and the rationale shown by ``rules``."""

    __slots__ = ("code", "title", "rationale")

    def __init__(self, code, title, rationale):
        self.code = code
        self.title = title
        self.rationale = rationale


RULES = {
    "D000": Rule(
        "D000", "invalid or stale suppression",
        "A '# repro: allow[...]' comment names an unknown rule code, or "
        "(--strict) suppresses a finding that no longer exists on that "
        "line.  Meta-rule: D000 itself cannot be suppressed."),
    "D001": Rule(
        "D001", "wall-clock time outside the sim clock",
        "Calls to time.time/monotonic/perf_counter/sleep or "
        "datetime.now/utcnow/today leak host wall-clock into the "
        "simulation.  Every timestamp must come from sim.now so two "
        "same-seed runs read identical clocks."),
    "D002": Rule(
        "D002", "module-level or unseeded randomness",
        "Calls through the module-level random generator (random.random, "
        "random.choice, ...) or random.SystemRandom share hidden global "
        "state seeded from the OS.  All draws must come from a "
        "random.Random(seed) owned by the simulation or chaos engine."),
    "D003": Rule(
        "D003", "unordered-set iteration reaching an ordering-sensitive sink",
        "Iterating a set (or frozenset / set expression) yields elements "
        "in hash order, which for strings varies per process with "
        "PYTHONHASHSEED — event fan-out, queue insertion, or list "
        "building driven by it diverges across runs.  Wrap the iterable "
        "in sorted(...) or keep an insertion-ordered dict.  Plain dict "
        "views (.keys()/.values()/.items()) are insertion-ordered in "
        "CPython >= 3.7 and therefore exempt."),
    "D004": Rule(
        "D004", "object identity used for ordering or keying",
        "id(obj) (and key=id sorts) depend on allocation addresses, "
        "which differ across processes and runs.  Allowed only inside "
        "__repr__/__str__/__format__, where the value is display-only."),
    "D005": Rule(
        "D005", "float accumulation feeding an event priority",
        "An augmented float accumulation (x += dt) on a value used as a "
        "heap priority or timeout delay drifts by accumulated rounding "
        "error; two code paths computing the 'same' priority can "
        "disagree in the last ulp and flip event order.  Recompute "
        "priorities absolutely (base + k*step) instead."),
    "D006": Rule(
        "D006", "non-canonical bytes fed to a stable hash",
        "crc32/hashlib inputs built from repr(), id(), hash(), or "
        "str() of a non-string depend on memory addresses or per-process "
        "hash seeds, so 'stable' routing or digests silently stop being "
        "stable (e.g. tenant->shard routing must hash canonical bytes)."),
    "C000": Rule(
        "C000", "invalid or stale staticcheck suppression",
        "A '# repro: allow[...]' comment names a C-rule with no matching "
        "staticcheck finding on that line (--strict), or an allowlist "
        "entry for a C-rule matches nothing.  Meta-rule: C000 itself "
        "cannot be suppressed."),
    "C001": Rule(
        "C001", "blocking kernel wait while holding a lock",
        "A sim process yields a blocking kernel wait (sim.timeout, "
        "any_of/all_of, a Condition) between Lock/Semaphore acquire and "
        "release.  Every other process needing that lock stalls for the "
        "full wait — and if the wait can only be satisfied by a process "
        "that needs the lock, the simulation deadlocks.  Model timed "
        "critical sections deliberately or release before waiting."),
    "C002": Rule(
        "C002", "lock-order inversion (deadlock cycle)",
        "The interprocedural lock-acquisition graph — an edge A->B when "
        "lock B is acquired (possibly through calls) while A is held — "
        "contains a cycle.  Two processes entering the cycle from "
        "different edges deadlock under the right schedule; the kernel's "
        "FIFO locks make this unrecoverable.  Acquire locks in one "
        "global order."),
    "C003": Rule(
        "C003", "module-level mutable state written from sim-process code",
        "A module-level dict/list/set/counter is mutated from code "
        "reachable by sim processes without a registered happens-before "
        "carrier.  Under the parallel backend this is a data-race hazard "
        "the vector-clock detector can only catch dynamically, "
        "per-schedule — and it leaks state across Simulation instances "
        "in one interpreter.  Own the state per-sim, or mark the "
        "definition '# repro: hb-carrier[why]' if access is provably "
        "kernel-ordered."),
    "C004": Rule(
        "C004", "orphaned Timeout/Event (created and dropped)",
        "A Timeout/Event is created but never awaited, cancelled, "
        "combined, stored, or returned on some path.  Orphaned timers "
        "sit in the heap/wheel until their deadline (the peak-heap blowup "
        "PR 9 fixed), and an orphaned Event that later fails crashes the "
        "run as an undefused failure with no waiter to attribute it to."),
    "C005": Rule(
        "C005", "unfenced store write from a leader-elected component",
        "A write path inside a leader-elected component (SyncerHA, "
        "ControllerManager, the ReplicatedStore coordinator) reaches the "
        "store without the fencing-token check: a transaction(...) with "
        "no fencing= argument, or a raw store put/delete/txn.  A deposed "
        "leader's in-flight writes would land after the new leader's "
        "fence barrier — the split-brain window fencing exists for."),
    "C006": Rule(
        "C006", "process spawned in an affinity scope without affinity",
        "sim.process()/spawn() is called without affinity= from code "
        "that has a tenant in hand.  The spawned process (and every "
        "event it creates) falls off its tenant's partition: harmless "
        "for results — the merge barrier fixes dispatch order — but it "
        "round-robins tenant work across workers, defeating the "
        "affinity partitioning the parallel backend exists for.  Pass "
        "affinity=<tenant> (an explicit tag always wins)."),
}

# Rule packs: prefix -> (name, checker) shown by `rules` and used to
# scope --strict staleness checks to the tool that owns the code.
RULE_PACKS = {
    "D": ("determinism", "python -m repro.analysis lint"),
    "C": ("concurrency/protocol", "python -m repro.analysis staticcheck"),
}

# Meta rules report invalid/stale suppressions and cannot themselves be
# suppressed.
META_RULES = frozenset(("D000", "C000"))

# Codes that may appear in allow[...] comments.
SUPPRESSIBLE = frozenset(code for code in RULES if code not in META_RULES)


class Finding:
    """One lint finding, pointing at a file/line/col."""

    __slots__ = ("path", "line", "col", "code", "message", "status")

    def __init__(self, path, line, col, code, message, status="active"):
        self.path = path
        self.line = line
        self.col = col
        self.code = code
        self.message = message
        # "active" | "suppressed" | "allowlisted"
        self.status = status

    def format(self):
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self):
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "status": self.status,
        }

    def __repr__(self):
        return f"<Finding {self.code} {self.path}:{self.line}>"


def format_rule_catalog():
    """The ``python -m repro.analysis rules`` output (both packs)."""
    lines = ["analysis rule catalog", ""]
    for prefix in sorted(RULE_PACKS):
        pack_name, checker = RULE_PACKS[prefix]
        lines.append(f"{prefix}-pack: {pack_name} rules ({checker})")
        lines.append("")
        for code in sorted(code for code in RULES
                           if code.startswith(prefix)):
            rule = RULES[code]
            lines.append(f"{code}  {rule.title}")
            lines.append(f"      {rule.rationale}")
            lines.append("")
    lines.append("suppress in place:  # repro: allow[DXXX] justification")
    lines.append("exempt a checked happens-before carrier at its "
                 "definition:  # repro: hb-carrier[why]")
    return "\n".join(lines)
