"""The determinism rule catalog (D001–D006).

Each rule names one mechanism by which a code path can make a
scheduling-visible decision that is not a pure function of the
simulation seed — exactly the failures that silently break the repo's
byte-identical-convergence and chaos-replay claims.

Suppression syntax
------------------

A finding can be acknowledged in place with a trailing comment::

    items = list(self._members)  # repro: allow[D003] snapshot, order unused

Multiple codes are comma-separated: ``# repro: allow[D003,D004]``.
Unknown codes are rejected (finding ``D000``), and under ``--strict``
a suppression on a line with no matching finding fails the run as
*stale*.  File-scoped exceptions live in the committed allowlist (see
:func:`repro.analysis.linter.load_allowlist`).
"""


class Rule:
    """One lint rule: code, title, and the rationale shown by ``rules``."""

    __slots__ = ("code", "title", "rationale")

    def __init__(self, code, title, rationale):
        self.code = code
        self.title = title
        self.rationale = rationale


RULES = {
    "D000": Rule(
        "D000", "invalid or stale suppression",
        "A '# repro: allow[...]' comment names an unknown rule code, or "
        "(--strict) suppresses a finding that no longer exists on that "
        "line.  Meta-rule: D000 itself cannot be suppressed."),
    "D001": Rule(
        "D001", "wall-clock time outside the sim clock",
        "Calls to time.time/monotonic/perf_counter/sleep or "
        "datetime.now/utcnow/today leak host wall-clock into the "
        "simulation.  Every timestamp must come from sim.now so two "
        "same-seed runs read identical clocks."),
    "D002": Rule(
        "D002", "module-level or unseeded randomness",
        "Calls through the module-level random generator (random.random, "
        "random.choice, ...) or random.SystemRandom share hidden global "
        "state seeded from the OS.  All draws must come from a "
        "random.Random(seed) owned by the simulation or chaos engine."),
    "D003": Rule(
        "D003", "unordered-set iteration reaching an ordering-sensitive sink",
        "Iterating a set (or frozenset / set expression) yields elements "
        "in hash order, which for strings varies per process with "
        "PYTHONHASHSEED — event fan-out, queue insertion, or list "
        "building driven by it diverges across runs.  Wrap the iterable "
        "in sorted(...) or keep an insertion-ordered dict.  Plain dict "
        "views (.keys()/.values()/.items()) are insertion-ordered in "
        "CPython >= 3.7 and therefore exempt."),
    "D004": Rule(
        "D004", "object identity used for ordering or keying",
        "id(obj) (and key=id sorts) depend on allocation addresses, "
        "which differ across processes and runs.  Allowed only inside "
        "__repr__/__str__/__format__, where the value is display-only."),
    "D005": Rule(
        "D005", "float accumulation feeding an event priority",
        "An augmented float accumulation (x += dt) on a value used as a "
        "heap priority or timeout delay drifts by accumulated rounding "
        "error; two code paths computing the 'same' priority can "
        "disagree in the last ulp and flip event order.  Recompute "
        "priorities absolutely (base + k*step) instead."),
    "D006": Rule(
        "D006", "non-canonical bytes fed to a stable hash",
        "crc32/hashlib inputs built from repr(), id(), hash(), or "
        "str() of a non-string depend on memory addresses or per-process "
        "hash seeds, so 'stable' routing or digests silently stop being "
        "stable (e.g. tenant->shard routing must hash canonical bytes)."),
}

# Codes that may appear in allow[...] comments (D000 is the meta rule).
SUPPRESSIBLE = frozenset(code for code in RULES if code != "D000")


class Finding:
    """One lint finding, pointing at a file/line/col."""

    __slots__ = ("path", "line", "col", "code", "message", "status")

    def __init__(self, path, line, col, code, message, status="active"):
        self.path = path
        self.line = line
        self.col = col
        self.code = code
        self.message = message
        # "active" | "suppressed" | "allowlisted"
        self.status = status

    def format(self):
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self):
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "status": self.status,
        }

    def __repr__(self):
        return f"<Finding {self.code} {self.path}:{self.line}>"


def format_rule_catalog():
    """The ``python -m repro.analysis rules`` output."""
    lines = ["determinism rule catalog", ""]
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"{code}  {rule.title}")
        lines.append(f"      {rule.rationale}")
        lines.append("")
    lines.append("suppress in place:  # repro: allow[DXXX] justification")
    return "\n".join(lines)
