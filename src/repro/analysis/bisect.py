"""Replay-divergence bisector.

Two runs with the same seed must produce byte-identical store-event
streams.  :class:`ReplayRecorder` hangs off the sim and hashes every
:class:`~repro.storage.etcd.WatchEvent` emitted by every
:class:`~repro.storage.etcd.EtcdStore` into a *cumulative* sha256
stream: digest *i* covers events ``0..i``.  That prefix property makes
"first divergent event" a monotonic predicate — ``digests_a[i] !=
digests_b[i]`` is false, then true, over *i* — so
:func:`first_divergence` binary-searches it in O(log n) comparisons and
attributes the event to the sim process that performed the write.

The deliberate-perturbation fixture (``Simulation(perturb_swap=K)``)
dispatches the (K+1)-th ready item before the K-th, flipping exactly one
event order; the bisector must localize the flip's first store-visible
consequence.
"""

import hashlib
import json


class _Entry:
    """One recorded store event, for attribution."""

    __slots__ = ("index", "time", "store", "type", "key", "revision",
                 "component")

    def __init__(self, index, time, store, type, key, revision, component):
        self.index = index
        self.time = time
        self.store = store
        self.type = type
        self.key = key
        self.revision = revision
        self.component = component

    def describe(self):
        return (f"#{self.index} t={self.time:.6f} {self.store} "
                f"{self.type} {self.key} @rev {self.revision} "
                f"by {self.component!r}")


class ReplayRecorder:
    """Records the per-event cumulative digest stream of one run.

    Construct with the sim *before* the env so every store hooks in.
    """

    def __init__(self, sim):
        self.sim = sim
        self._hash = hashlib.sha256()
        self.digests = []
        self.entries = []
        sim.replay_recorder = self

    def record(self, store, event):
        """Called by ``EtcdStore._emit`` for every committed write."""
        process = self.sim._active_process
        component = process.name if process is not None else "main"
        payload = (f"{store}|{event.type}|{event.key}|{event.revision}|"
                   f"{json.dumps(event.value, sort_keys=True)}")
        self._hash.update(payload.encode("utf-8"))
        self.digests.append(self._hash.hexdigest())
        self.entries.append(_Entry(len(self.entries), self.sim.now, store,
                                   event.type, event.key, event.revision,
                                   component))

    @property
    def final_digest(self):
        return self.digests[-1] if self.digests else self._hash.hexdigest()


class Divergence:
    """The first point where two digest streams disagree."""

    __slots__ = ("index", "a", "b", "probes")

    def __init__(self, index, a, b, probes=0):
        self.index = index
        self.a = a
        self.b = b
        self.probes = probes

    @property
    def component(self):
        """Best attribution: the divergent event's writer."""
        entry = self.a or self.b
        return entry.component if entry is not None else "<unknown>"

    def format(self):
        lines = [f"first divergent store event: index {self.index} "
                 f"(component {self.component!r}, {self.probes} digest "
                 f"probes)"]
        lines.append(f"  run A: {self.a.describe() if self.a else '<stream ended>'}")
        lines.append(f"  run B: {self.b.describe() if self.b else '<stream ended>'}")
        return "\n".join(lines)

    def __repr__(self):
        return f"<Divergence index={self.index} component={self.component!r}>"


def first_divergence(run_a, run_b):
    """Locate the first divergent event between two recorded runs.

    Returns a :class:`Divergence`, or ``None`` when the streams are
    identical.  Accepts :class:`ReplayRecorder` instances.
    """
    digests_a, digests_b = run_a.digests, run_b.digests
    common = min(len(digests_a), len(digests_b))
    probes = 0
    if common:
        probes += 1
        if digests_a[common - 1] != digests_b[common - 1]:
            # Cumulative digests: mismatch at i means the first diverging
            # event is at or before i, so this predicate is monotonic.
            lo, hi = 0, common - 1
            while lo < hi:
                mid = (lo + hi) // 2
                probes += 1
                if digests_a[mid] != digests_b[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            return Divergence(lo, run_a.entries[lo], run_b.entries[lo],
                              probes=probes)
    if len(digests_a) != len(digests_b):
        # Identical common prefix; one run simply emitted more events.
        index = common
        entry_a = run_a.entries[index] if index < len(run_a.entries) else None
        entry_b = run_b.entries[index] if index < len(run_b.entries) else None
        return Divergence(index, entry_a, entry_b, probes=probes)
    return None


# ----------------------------------------------------------------------
# Recorded reference runs (CLI + chaos self-diagnosis)
# ----------------------------------------------------------------------


def run_recorded(seed, tenants=2, pods_per_tenant=3, nodes=3, horizon=30.0,
                 perturb=None):
    """One small recorded deployment run; returns the recorder.

    ``perturb`` (event index) applies the one-shot order flip — the
    fixture used to validate that the bisector localizes a real
    divergence, never in normal operation.
    """
    from repro.core.env import VirtualClusterEnv
    from repro.simkernel.loop import Simulation

    sim = Simulation(seed=seed, perturb_swap=perturb)
    recorder = ReplayRecorder(sim)
    env = VirtualClusterEnv(seed=seed, sim=sim, num_virtual_nodes=nodes,
                            scan_interval=5.0, dws_workers=2, uws_workers=2)
    env.bootstrap()
    handles = [env.run_coroutine(env.create_tenant(f"tenant-{i}"))
               for i in range(tenants)]
    for handle in handles:
        for index in range(pods_per_tenant):
            env.run_coroutine(handle.create_pod(f"pod-{index}"))
    env.run_for(horizon)
    return recorder


def bisect_seed(seed, tenants=2, pods_per_tenant=3, nodes=3, horizon=30.0,
                perturb=None):
    """Run a seed twice (optionally perturbing the second run) and diff.

    Returns ``(divergence_or_None, recorder_a, recorder_b)``.
    """
    run_a = run_recorded(seed, tenants=tenants,
                         pods_per_tenant=pods_per_tenant, nodes=nodes,
                         horizon=horizon)
    run_b = run_recorded(seed, tenants=tenants,
                         pods_per_tenant=pods_per_tenant, nodes=nodes,
                         horizon=horizon, perturb=perturb)
    return first_divergence(run_a, run_b), run_a, run_b
