"""Interprocedural lock-acquisition graph (C001/C002 substrate).

Built on :class:`repro.analysis.callgraph.Project`.  The analysis is
three-layered:

1. **Lock identity.**  A lock is named by where it lives, not by the
   local variable that happens to hold it: ``self._dws_locks[i]`` in a
   ``Syncer`` method is ``repro.core.syncer.syncer.Syncer._dws_locks``
   for every ``i`` (a lock *family* shares one ordering discipline),
   and a module-level ``_LOCK`` is ``module._LOCK``.  Locks passed as
   bare parameters are unresolvable and deliberately ignored — the
   repo's idiom keeps locks on ``self`` or at module scope.

2. **Held-region scan.**  Each function body is scanned in source
   order with a held-lock stack: ``yield x.acquire()`` (kernel locks),
   bare ``x.acquire()`` and ``with x:`` (thread locks) push;
   ``x.release()`` and ``with``-exit pop.  While the stack is
   non-empty the scan records (a) direct nested acquisitions, (b) every
   call site with the locks held at it, and (c) blocking kernel waits
   (``sim.timeout``, ``any_of``/``all_of``, bare event yields) — the
   C001 events.

3. **Interprocedural closure.**  A fixpoint over the call graph
   computes each function's transitive acquire-set; a call made while
   holding L adds edges L -> every lock the callee can acquire.  Cycles
   in the resulting graph (including self-loops: re-acquiring a
   non-reentrant lock) are the C002 findings.

Branches are scanned sequentially (both arms of an ``if`` contribute),
which can neither miss a nesting that exists on some path nor invent a
lock identity — it can at worst pair an acquire in one arm with a wait
in another; see DESIGN.md §17 for the precision notes.
"""

import ast

from .callgraph import dotted_name

# Constructors whose result is a lock.  Kernel locks (the simkernel
# primitives) participate in C001 — holding one across a kernel wait
# stalls every FIFO waiter; thread locks only participate in C002.
KERNEL_LOCK_CONSTRUCTORS = {"Lock", "Semaphore"}
THREAD_LOCK_CONSTRUCTORS = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
}

# Dotted-name suffixes of blocking kernel waits (C001).
_WAIT_SUFFIXES = (".timeout", ".any_of", ".all_of")
_WAIT_NAMES = {"Timeout", "any_of", "all_of"}


class LockInfo:
    """One lock (or lock family): identity plus kind."""

    __slots__ = ("lock_id", "kernel")

    def __init__(self, lock_id, kernel):
        self.lock_id = lock_id
        self.kernel = kernel

    def __repr__(self):
        kind = "kernel" if self.kernel else "thread"
        return f"<LockInfo {self.lock_id} ({kind})>"


class LockEdge:
    """``held`` was held when ``acquired`` was acquired at ``site``."""

    __slots__ = ("held", "acquired", "path", "line", "col", "caller",
                 "via")

    def __init__(self, held, acquired, path, line, col, caller, via=None):
        self.held = held
        self.acquired = acquired
        self.path = path
        self.line = line
        self.col = col
        self.caller = caller
        self.via = via  # callee qualname for interprocedural edges

    def key(self):
        return (self.held, self.acquired, self.path, self.line, self.col)


class WaitWhileHeld:
    """A blocking kernel wait yielded while a kernel lock is held."""

    __slots__ = ("lock_id", "wait", "path", "line", "col", "caller")

    def __init__(self, lock_id, wait, path, line, col, caller):
        self.lock_id = lock_id
        self.wait = wait
        self.path = path
        self.line = line
        self.col = col
        self.caller = caller


def _constructor_kind(resolved):
    """'kernel' / 'thread' / None for a resolved constructor name."""
    if resolved is None:
        return None
    tail = resolved.rsplit(".", 1)[-1]
    if resolved in THREAD_LOCK_CONSTRUCTORS:
        return "thread"
    if tail in KERNEL_LOCK_CONSTRUCTORS \
            and not resolved.startswith("threading."):
        return "kernel"
    return None


class _FunctionScan(ast.NodeVisitor):
    """Source-order scan of one function body with a held-lock stack."""

    def __init__(self, graph, info):
        self.graph = graph
        self.info = info
        self.held = []           # LockInfo, acquisition order
        self.aliases = {}        # local name -> LockInfo
        self.calls_while_held = []   # (tuple of lock ids, callee, node)
        self.acquired = set()    # every lock id this body acquires

    # -- lock identity -------------------------------------------------

    def _lock_for(self, node):
        """LockInfo for an expression naming a lock, or None."""
        if isinstance(node, ast.Subscript):
            return self._lock_for(node.value)
        if isinstance(node, ast.Name):
            if node.id in self.aliases:
                return self.aliases[node.id]
            return self.graph.module_locks.get(
                (self.info.module, node.id))
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" and self.info.class_name:
            cls_qual = f"{self.info.module}.{self.info.class_name}"
            return self.graph.lock_attr(cls_qual, node.attr)
        return None

    # -- events --------------------------------------------------------

    def _push(self, lock, node):
        for holder in self.held:
            self.graph.add_edge(LockEdge(
                holder.lock_id, lock.lock_id, self.info.path,
                node.lineno, node.col_offset, self.info.qualname))
        self.held.append(lock)
        self.acquired.add(lock.lock_id)

    def _pop(self, lock):
        for index in range(len(self.held) - 1, -1, -1):
            if self.held[index].lock_id == lock.lock_id:
                del self.held[index]
                return

    def _on_call(self, node):
        """Record call sites made while holding locks (for closure)."""
        callee = self.graph.callee_of(node)
        if callee is not None:
            held_ids = tuple(lock.lock_id for lock in self.held)
            self.calls_while_held.append((held_ids, callee, node))

    def _classify_wait(self, call):
        """A human-readable wait description for a blocking call."""
        name = dotted_name(call.func)
        if name is None:
            return None
        if name in _WAIT_NAMES:
            return f"{name}(...)"
        for suffix in _WAIT_SUFFIXES:
            if name.endswith(suffix) or name == suffix[1:]:
                return f"{name}(...)"
        return None

    def _on_yield(self, node):
        value = node.value
        if not isinstance(value, ast.Call):
            return
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            return  # the descent into the Call pushes the lock
        wait = self._classify_wait(value)
        if wait is None:
            return
        for holder in self.held:
            if holder.kernel:
                self.graph.waits.append(WaitWhileHeld(
                    holder.lock_id, wait, self.info.path, node.lineno,
                    node.col_offset, self.info.qualname))

    # -- traversal -----------------------------------------------------

    def _scan_expr(self, node):
        """Pre-order walk of an expression, nested defs excluded."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            self._on_yield(node)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in ("acquire", "release"):
                lock = self._lock_for(func.value)
                if lock is not None:
                    if func.attr == "acquire":
                        # Bare (un-yielded) acquire: thread-lock idiom.
                        self._push(lock, node)
                    else:
                        self._pop(lock)
                    return
            self._on_call(node)
        for child in ast.iter_child_nodes(node):
            self._scan_expr(child)

    def _scan_stmts(self, stmts):
        for stmt in stmts:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value)
            lock = self._lock_for(stmt.value)
            if lock is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.aliases[target.id] = lock
            return
        if isinstance(stmt, ast.With):
            entered = []
            for item in stmt.items:
                self._scan_expr(item.context_expr)
                lock = self._lock_for(item.context_expr)
                if lock is not None:
                    self._push(lock, item.context_expr)
                    entered.append(lock)
            self._scan_stmts(stmt.body)
            for lock in reversed(entered):
                self._pop(lock)
            return
        if isinstance(stmt, ast.Try):
            self._scan_stmts(stmt.body)
            for handler in stmt.handlers:
                self._scan_stmts(handler.body)
            self._scan_stmts(stmt.orelse)
            self._scan_stmts(stmt.finalbody)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_expr(stmt.test)
            self._scan_stmts(stmt.body)
            self._scan_stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.For):
            self._scan_expr(stmt.iter)
            self._scan_stmts(stmt.body)
            self._scan_stmts(stmt.orelse)
            return
        for child in ast.iter_child_nodes(stmt):
            self._scan_expr(child)

    def run(self):
        self._scan_stmts(self.info.node.body)
        return self


class LockGraph:
    """The project's lock-acquisition graph plus C001 wait events."""

    def __init__(self, project):
        self.project = project
        self.class_locks = {}    # (class qualname, attr) -> LockInfo
        self.module_locks = {}   # (module, name) -> LockInfo
        self.edges = {}          # (held, acquired) -> [LockEdge]
        self.waits = []          # WaitWhileHeld events (C001)
        self.acquires = {}       # function qualname -> set of lock ids
        self._callee_by_node = {}
        self._collect_locks()
        self._index_calls()
        self._scan_functions()
        self._close_over_calls()

    # -- construction --------------------------------------------------

    def _collect_locks(self):
        for qualname in sorted(self.project.classes):
            cls = self.project.classes[qualname]
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                        continue
                    value = node.value
                    kind = self._value_lock_kind(value, cls.module)
                    if kind is None:
                        continue
                    targets = (node.targets
                               if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            lock_id = f"{qualname}.{target.attr}"
                            self.class_locks[(qualname, target.attr)] = \
                                LockInfo(lock_id, kind == "kernel")
        for name in sorted(self.project.modules):
            module = self.project.modules[name]
            for node in module.tree.body:
                if not isinstance(node, ast.Assign):
                    continue
                kind = self._value_lock_kind(node.value, name)
                if kind is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        lock_id = f"{name}.{target.id}"
                        self.module_locks[(name, target.id)] = \
                            LockInfo(lock_id, kind == "kernel")

    def _value_lock_kind(self, value, module_name):
        """Lock kind of an assigned value (constructors, lock lists)."""
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                kind = self._value_lock_kind(element, module_name)
                if kind is not None:
                    return kind
            return None
        if isinstance(value, ast.ListComp):
            return self._value_lock_kind(value.elt, module_name)
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        if name is None:
            return None
        module = self.project.modules.get(module_name)
        if module is not None:
            head, _, rest = name.partition(".")
            if head in module.name_imports:
                base = module.name_imports[head]
                name = f"{base}.{rest}" if rest else base
            elif head in module.module_aliases:
                base = module.module_aliases[head]
                name = f"{base}.{rest}" if rest else base
        return _constructor_kind(name)

    def lock_attr(self, cls_qualname, attr):
        """LockInfo for ``self.<attr>``, searching base classes too."""
        seen = set()
        stack = [cls_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            lock = self.class_locks.get((current, attr))
            if lock is not None:
                return lock
            cls = self.project.classes.get(current)
            if cls is None:
                continue
            for base in cls.bases:
                base_cls = self.project.class_by_name(
                    base.rsplit(".", 1)[-1])
                if base_cls is not None:
                    stack.append(base_cls.qualname)
        return None

    def _index_calls(self):
        for sites in self.project.call_sites.values():
            for site in sites:
                if site.callee is not None:
                    self._callee_by_node[site.node] = site.callee

    def callee_of(self, node):
        return self._callee_by_node.get(node)

    def _scan_functions(self):
        self._held_calls = []
        for qualname in sorted(self.project.functions):
            info = self.project.functions[qualname]
            scan = _FunctionScan(self, info).run()
            self.acquires[qualname] = scan.acquired
            for held_ids, callee, node in scan.calls_while_held:
                self._held_calls.append((held_ids, callee, node, info))

    def _close_over_calls(self):
        """Fixpoint transitive acquire-sets, then interprocedural edges."""
        transitive = {qualname: set(locks)
                      for qualname, locks in self.acquires.items()}
        changed = True
        while changed:
            changed = False
            for qualname in transitive:
                current = transitive[qualname]
                before = len(current)
                for callee in self.project.callees(qualname):
                    current |= transitive.get(callee, frozenset())
                if len(current) != before:
                    changed = True
        self.transitive_acquires = transitive
        for held_ids, callee, node, info in self._held_calls:
            if not held_ids:
                continue
            for lock_id in sorted(
                    transitive.get(callee, frozenset())):
                for held in held_ids:
                    self.add_edge(LockEdge(
                        held, lock_id, info.path, node.lineno,
                        node.col_offset, info.qualname, via=callee))

    def add_edge(self, edge):
        self.edges.setdefault((edge.held, edge.acquired), []).append(edge)

    # -- queries -------------------------------------------------------

    def adjacency(self):
        out = {}
        for held, acquired in self.edges:
            out.setdefault(held, set()).add(acquired)
        return out

    def cycles(self):
        """Lock-order cycles: sorted lists of lock ids (C002).

        Every strongly-connected component with an internal edge is a
        cycle — including single-lock components with a self-loop (a
        re-acquire of a non-reentrant lock).
        """
        adjacency = self.adjacency()
        index = {}
        lowlink = {}
        on_stack = set()
        stack = []
        components = []
        counter = [0]

        def strongconnect(node):
            # Iterative Tarjan (explicit work stack; no recursion limit).
            work = [(node, iter(sorted(adjacency.get(node, ()))))]
            index[node] = lowlink[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in index:
                        index[successor] = lowlink[successor] = counter[0]
                        counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor,
                                     iter(sorted(adjacency.get(
                                         successor, ())))))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[current] = min(lowlink[current],
                                               index[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent],
                                          lowlink[current])
                if lowlink[current] == index[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    components.append(sorted(component))

        for node in sorted(adjacency):
            if node not in index:
                strongconnect(node)

        result = []
        for component in components:
            if len(component) > 1:
                result.append(component)
            elif (component[0], component[0]) in self.edges:
                result.append(component)
        return sorted(result)

    def cycle_edges(self, component):
        """Deterministically-ordered edges inside one cycle component."""
        members = set(component)
        edges = []
        for (held, acquired), sites in sorted(self.edges.items()):
            if held in members and acquired in members:
                best = min(sites, key=lambda e: (e.path, e.line, e.col))
                edges.append(best)
        return edges
