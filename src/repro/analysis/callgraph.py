"""Project-wide symbol table and call graph (staticcheck substrate).

:class:`Project` parses every module under the given roots once and
builds the whole-program facts the C-rule pack needs:

- a symbol table of modules, classes, and functions with qualified
  names (``repro.core.syncer.ha.SyncerHA._takeover``);
- per-class attribute types inferred from ``self.x = ClassName(...)``
  assignments, so ``self.x.method()`` calls resolve across modules;
- a call graph with one edge per syntactic call site, resolved through
  import aliases, ``self``, local names, and — as a last resort — a
  unique-method-name heuristic (if exactly one project class defines
  ``frobnicate``, an unresolved ``obj.frobnicate()`` links to it);
- generator-function detection and reachability queries ("is this
  function sim-process code?").

The resolution is deliberately class-hierarchy-analysis-lite: precise
where the repo's idioms make precision cheap (``self.`` calls, module
imports, locally-defined helpers), and explicitly unresolved otherwise.
Soundness/precision trade-offs are documented in DESIGN.md §17.
"""

import ast
from pathlib import Path


def module_name_for(path):
    """Dotted module name for a source path.

    Paths under a ``src/`` directory map to their import path
    (``src/repro/core/env.py`` -> ``repro.core.env``); anything else
    (tests, fixtures) maps to its stem so fixture corpora still get
    stable, distinct module names.
    """
    parts = list(Path(path).parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    name = ".".join(parts)
    if name.endswith(".py"):
        name = name[:-3]
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name.rsplit("/", 1)[-1]


def _body_has_yield(node):
    """True if the function body itself yields (nested defs excluded)."""
    stack = list(node.body)
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(sub))
    return False


def dotted_name(node):
    """The dotted name of an expression (``a.b.c``), or None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class FunctionInfo:
    """One function or method in the project."""

    __slots__ = ("qualname", "module", "class_name", "name", "node",
                 "path", "is_generator", "params")

    def __init__(self, qualname, module, class_name, node, path):
        self.qualname = qualname
        self.module = module
        self.class_name = class_name
        self.name = node.name
        self.node = node
        self.path = path
        self.is_generator = _body_has_yield(node)
        args = node.args
        self.params = tuple(
            a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs))

    def __repr__(self):
        return f"<FunctionInfo {self.qualname}>"


class ClassInfo:
    """One class: methods, base names, and inferred attribute types."""

    __slots__ = ("qualname", "module", "name", "node", "bases", "methods",
                 "attr_types")

    def __init__(self, qualname, module, node):
        self.qualname = qualname
        self.module = module
        self.name = node.name
        self.node = node
        self.bases = tuple(
            base for base in (dotted_name(b) for b in node.bases)
            if base is not None)
        self.methods = {}        # name -> FunctionInfo
        self.attr_types = {}     # "attr" -> class qualname (self.x = C())

    def __repr__(self):
        return f"<ClassInfo {self.qualname}>"


class ModuleInfo:
    """One parsed module: source, tree, imports, top-level symbols."""

    __slots__ = ("name", "path", "source", "tree", "module_aliases",
                 "name_imports", "functions", "classes")

    def __init__(self, name, path, source, tree):
        self.name = name
        self.path = path
        self.source = source
        self.tree = tree
        # alias -> module ("import numpy as np" -> {"np": "numpy"}).
        self.module_aliases = {}
        # bare name -> "module.name" ("from x import y").
        self.name_imports = {}
        self.functions = {}      # top-level name -> FunctionInfo
        self.classes = {}        # top-level name -> ClassInfo


class CallSite:
    """One syntactic call: caller, resolved callee (or None), location."""

    __slots__ = ("caller", "callee", "name", "node", "via_unique")

    def __init__(self, caller, callee, name, node, via_unique=False):
        self.caller = caller          # caller FunctionInfo qualname
        self.callee = callee          # callee qualname or None
        self.name = name              # syntactic name ("self.flush", "put")
        self.node = node
        self.via_unique = via_unique  # resolved by unique-method heuristic

    def __repr__(self):
        return f"<CallSite {self.caller} -> {self.callee or self.name!r}>"


class _SymbolCollector(ast.NodeVisitor):
    """First pass over one module: imports, classes, functions."""

    def __init__(self, project, module):
        self.project = project
        self.module = module
        self._class_stack = []
        self._func_stack = []

    def visit_Import(self, node):
        for alias in node.names:
            self.module.module_aliases[
                alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node):
        if node.module and node.level == 0:
            base = node.module
        elif node.module:
            # Relative import: resolve against this module's package.
            package = self.module.name.rsplit(".", node.level)[0]
            base = f"{package}.{node.module}" if package else node.module
        else:
            base = self.module.name.rsplit(".", node.level)[0]
        for alias in node.names:
            self.module.name_imports[alias.asname or alias.name] = \
                f"{base}.{alias.name}"

    def visit_ClassDef(self, node):
        qualname = f"{self.module.name}.{node.name}"
        info = ClassInfo(qualname, self.module.name, node)
        if not self._class_stack and not self._func_stack:
            self.module.classes[node.name] = info
        self.project.classes[qualname] = info
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_func(self, node):
        if self._class_stack and not self._func_stack:
            cls = self._class_stack[-1]
            qualname = f"{cls.qualname}.{node.name}"
            info = FunctionInfo(qualname, self.module.name, cls.name,
                                node, self.module.path)
            cls.methods[node.name] = info
            self.project.method_index.setdefault(
                node.name, []).append(qualname)
        else:
            parent = self._func_stack[-1] if self._func_stack else None
            if parent is not None:
                qualname = f"{parent.qualname}.{node.name}"
            else:
                qualname = f"{self.module.name}.{node.name}"
                self.module.functions[node.name] = None  # placeholder
            info = FunctionInfo(
                qualname,
                self.module.name,
                self._class_stack[-1].name if self._class_stack else None,
                node, self.module.path)
            if parent is None and not self._class_stack:
                self.module.functions[node.name] = info
        self.project.functions[qualname] = info
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func


class _CallCollector(ast.NodeVisitor):
    """Second pass: attribute types, call sites, call-graph edges."""

    def __init__(self, project, module):
        self.project = project
        self.module = module
        self._class_stack = []
        self._func_stack = []
        # function qualname -> {local name -> nested FunctionInfo}
        self._local_funcs = {}

    # -- scope bookkeeping --------------------------------------------

    def visit_ClassDef(self, node):
        self._class_stack.append(
            self.project.classes[self._class_qualname(node)])
        self.generic_visit(node)
        self._class_stack.pop()

    def _class_qualname(self, node):
        if self._class_stack:
            return f"{self._class_stack[-1].qualname}.{node.name}"
        return f"{self.module.name}.{node.name}"

    def _visit_func(self, node):
        if self._func_stack:
            parent = self._func_stack[-1]
            qualname = f"{parent.qualname}.{node.name}"
            info = self.project.functions.get(qualname)
            if info is not None:
                self._local_funcs.setdefault(
                    parent.qualname, {})[node.name] = info
                # Defining a nested function is treated as a call edge:
                # the parent hands the body to the kernel (spawn) or
                # calls it later; for reachability they are one unit.
                self.project.add_edge(CallSite(
                    parent.qualname, qualname, node.name, node))
        elif self._class_stack:
            qualname = f"{self._class_stack[-1].qualname}.{node.name}"
            info = self.project.functions.get(qualname)
        else:
            qualname = f"{self.module.name}.{node.name}"
            info = self.project.functions.get(qualname)
        if info is None:
            return
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    # -- attribute type inference -------------------------------------

    def visit_Assign(self, node):
        self._infer_attr_types(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        if node.value is not None:
            self._infer_attr_types([node.target], node.value)
        self.generic_visit(node)

    def _infer_attr_types(self, targets, value):
        if not self._class_stack or not isinstance(value, ast.Call):
            return
        target_cls = self._resolve_class(value.func)
        if target_cls is None:
            return
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                self._class_stack[-1].attr_types[target.attr] = \
                    target_cls.qualname

    def _resolve_class(self, func):
        """The project ClassInfo a constructor call refers to, if any."""
        name = dotted_name(func)
        if name is None:
            return None
        resolved = self._resolve_dotted(name)
        return self.project.classes.get(resolved) if resolved else None

    # -- call resolution ----------------------------------------------

    def _resolve_dotted(self, name):
        """Apply import aliases to a dotted name."""
        head, _, rest = name.partition(".")
        imports = self.module.name_imports
        aliases = self.module.module_aliases
        if head in imports:
            base = imports[head]
            return f"{base}.{rest}" if rest else base
        if head in aliases:
            base = aliases[head]
            return f"{base}.{rest}" if rest else base
        if head in self.module.classes or head in self.module.functions:
            return f"{self.module.name}.{name}"
        return name

    def _lookup_method(self, cls, method):
        """Resolve ``method`` on ``cls`` or its project-known bases."""
        seen = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                return current.methods[method]
            for base in current.bases:
                resolved = self._resolve_dotted(base)
                base_cls = self.project.classes.get(resolved)
                if base_cls is None:
                    base_cls = self.project.class_by_name(
                        base.rsplit(".", 1)[-1])
                if base_cls is not None:
                    stack.append(base_cls)
        return None

    def resolve_call(self, func_node):
        """(callee qualname or None, syntactic name, via_unique)."""
        caller = self._func_stack[-1] if self._func_stack else None
        name = dotted_name(func_node)
        if name is None:
            return None, "<expr>", False
        parts = name.split(".")
        # Locally-defined nested function.
        if caller is not None and len(parts) == 1:
            local = self._local_funcs.get(caller.qualname, {})
            if parts[0] in local:
                return local[parts[0]].qualname, name, False
        # self.method() / self.attr.method().
        if parts[0] == "self" and self._class_stack:
            cls = self._class_stack[-1]
            if len(parts) == 2:
                method = self._lookup_method(cls, parts[1])
                if method is not None:
                    return method.qualname, name, False
            elif len(parts) == 3 and parts[1] in cls.attr_types:
                attr_cls = self.project.classes.get(
                    cls.attr_types[parts[1]])
                if attr_cls is not None:
                    method = self._lookup_method(attr_cls, parts[2])
                    if method is not None:
                        return method.qualname, name, False
        # Module-level / imported name, possibly a class constructor.
        resolved = self._resolve_dotted(name)
        target = self.project.functions.get(resolved)
        if target is not None:
            return target.qualname, name, False
        cls = self.project.classes.get(resolved)
        if cls is not None:
            init = cls.methods.get("__init__")
            return (init.qualname if init is not None
                    else cls.qualname), name, False
        # Unique-method-name fallback for unresolved attribute calls.
        if len(parts) > 1:
            candidates = self.project.method_index.get(parts[-1], ())
            if len(candidates) == 1:
                return candidates[0], name, True
        return None, name, False

    def visit_Call(self, node):
        if self._func_stack:
            callee, name, via_unique = self.resolve_call(node.func)
            self.project.add_edge(CallSite(
                self._func_stack[-1].qualname, callee, name, node,
                via_unique=via_unique))
        self.generic_visit(node)


class Project:
    """Whole-program symbol table + call graph over a set of roots."""

    def __init__(self):
        self.modules = {}        # module name -> ModuleInfo
        self.functions = {}      # qualname -> FunctionInfo
        self.classes = {}        # qualname -> ClassInfo
        self.method_index = {}   # method name -> [class-method qualnames]
        self.call_sites = {}     # caller qualname -> [CallSite]
        self._edges = {}         # caller qualname -> set of callee names

    # -- loading -------------------------------------------------------

    @classmethod
    def load(cls, paths):
        project = cls()
        for file_path in cls.iter_py_files(paths):
            project.add_file(file_path)
        project.finish()
        return project

    @staticmethod
    def iter_py_files(paths):
        for path in paths:
            path = Path(path)
            if path.is_dir():
                yield from sorted(path.rglob("*.py"))
            else:
                yield path

    def add_file(self, path):
        path = Path(path)
        source = path.read_text()
        rel = path.as_posix()
        tree = ast.parse(source, filename=rel)
        module = ModuleInfo(module_name_for(rel), rel, source, tree)
        self.modules[module.name] = module
        _SymbolCollector(self, module).visit(tree)
        return module

    def finish(self):
        """Resolve call sites (requires every module to be added)."""
        for name in sorted(self.modules):
            module = self.modules[name]
            _CallCollector(self, module).visit(module.tree)

    # -- graph ---------------------------------------------------------

    def add_edge(self, site):
        self.call_sites.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self._edges.setdefault(site.caller, set()).add(site.callee)

    def callees(self, qualname):
        return self._edges.get(qualname, frozenset())

    def class_by_name(self, name):
        """The unique project class with this bare name, or None."""
        matches = [cls for qual, cls in self.classes.items()
                   if cls.name == name]
        return matches[0] if len(matches) == 1 else None

    def reachable_from(self, seeds):
        """Every function qualname reachable from ``seeds`` (inclusive)."""
        seen = set()
        stack = sorted(seeds)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(sorted(self.callees(current) - seen))
        return seen

    def generator_functions(self):
        """Qualnames of every generator function (sim-process bodies)."""
        return {qualname for qualname, info in self.functions.items()
                if info.is_generator}

    def sim_reachable(self):
        """Functions that are sim-process code or called from it.

        Generator functions are the kernel's process bodies (and its
        in-process waits); anything they can reach executes under the
        simulation's scheduling.  Import-time code (module scope, class
        decorators) is deliberately excluded.
        """
        return self.reachable_from(self.generator_functions())
