"""CLI for the analysis suite.

Usage::

    PYTHONPATH=src python -m repro.analysis lint src/ [--strict]
    PYTHONPATH=src python -m repro.analysis staticcheck src/ [--strict]
    PYTHONPATH=src python -m repro.analysis race --seed 0
    PYTHONPATH=src python -m repro.analysis bisect --seed 0 [--perturb K]
    PYTHONPATH=src python -m repro.analysis rules

Exit codes: 0 clean; 1 usage/internal error; 2 findings (active lint
or staticcheck findings, race conflicts, or a localized replay
divergence).
"""

import argparse
import sys
from pathlib import Path

from .bisect import bisect_seed
from .linter import format_report, lint_paths, load_allowlist
from .racedetect import run_under_detector
from .rules import format_rule_catalog
from .staticcheck import check_paths, format_json, format_sarif

DEFAULT_ALLOWLIST = "analysis-allowlist.txt"


def _cmd_lint(args):
    allowlist = ()
    allowlist_path = args.allowlist
    if allowlist_path is None and Path(DEFAULT_ALLOWLIST).is_file():
        allowlist_path = DEFAULT_ALLOWLIST
    if allowlist_path is not None:
        try:
            allowlist = load_allowlist(allowlist_path)
        except (OSError, ValueError) as exc:
            print(f"lint: bad allowlist: {exc}", file=sys.stderr)
            return 1
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 1
    result = lint_paths(args.paths, allowlist=allowlist, strict=args.strict)
    print(format_report(result, verbose=args.verbose))
    return 0 if result.ok else 2


def _cmd_staticcheck(args):
    allowlist = ()
    allowlist_path = args.allowlist
    if allowlist_path is None and Path(DEFAULT_ALLOWLIST).is_file():
        allowlist_path = DEFAULT_ALLOWLIST
    if allowlist_path is not None:
        try:
            allowlist = load_allowlist(allowlist_path)
        except (OSError, ValueError) as exc:
            print(f"staticcheck: bad allowlist: {exc}", file=sys.stderr)
            return 1
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"staticcheck: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 1
    result = check_paths(args.paths, allowlist=allowlist,
                         strict=args.strict)
    if args.format == "json":
        print(format_json(result))
    elif args.format == "sarif":
        print(format_sarif(result))
    else:
        print(format_report(result, verbose=args.verbose))
    return 0 if result.ok else 2


def _cmd_race(args):
    detector = run_under_detector(
        args.seed, tenants=args.tenants, pods_per_tenant=args.pods,
        nodes=args.nodes, horizon=args.horizon,
        track_reads=args.track_reads,
        store_replicas=args.replicas_store)
    print(detector.report())
    return 0 if detector.ok else 2


def _cmd_bisect(args):
    divergence, run_a, run_b = bisect_seed(
        args.seed, tenants=args.tenants, pods_per_tenant=args.pods,
        nodes=args.nodes, horizon=args.horizon, perturb=args.perturb)
    if divergence is None:
        print(f"seed {args.seed}: replay deterministic — "
              f"{len(run_a.digests)} store events, final digest "
              f"{run_a.final_digest[:16]}… identical across runs")
        return 0
    print(f"seed {args.seed}: replay DIVERGED")
    print(divergence.format())
    return 2


def _cmd_rules(_args):
    print(format_rule_catalog())
    return 0


def _add_run_args(parser):
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--pods", type=int, default=3,
                        help="pods per tenant")
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--horizon", type=float, default=30.0)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="determinism & isolation analysis suite")
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the determinism linter")
    lint.add_argument("paths", nargs="+", help="files or trees to lint")
    lint.add_argument("--allowlist", default=None,
                      help=f"allowlist file (default: {DEFAULT_ALLOWLIST} "
                           f"in the current directory, when present)")
    lint.add_argument("--strict", action="store_true",
                      help="also fail stale suppressions/allowlist entries")
    lint.add_argument("--verbose", action="store_true",
                      help="print suppressed and allowlisted findings too")
    lint.set_defaults(func=_cmd_lint)

    staticcheck = sub.add_parser(
        "staticcheck",
        help="run the whole-program concurrency/protocol checker")
    staticcheck.add_argument("paths", nargs="+",
                             help="files or trees to check")
    staticcheck.add_argument(
        "--allowlist", default=None,
        help=f"allowlist file (default: {DEFAULT_ALLOWLIST} in the "
             f"current directory, when present)")
    staticcheck.add_argument(
        "--strict", action="store_true",
        help="also fail stale C-rule suppressions/allowlist entries")
    staticcheck.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)")
    staticcheck.add_argument(
        "--verbose", action="store_true",
        help="print suppressed and allowlisted findings too (text)")
    staticcheck.set_defaults(func=_cmd_staticcheck)

    race = sub.add_parser("race",
                          help="run a deployment under the race detector")
    _add_run_args(race)
    race.add_argument("--track-reads", action="store_true",
                      help="also flag read-write conflicts (diagnostic; "
                           "level-triggered reads make this noisy)")
    race.add_argument("--replicas-store", type=int, default=1,
                      help="run the super cluster on a replicated store "
                           "(WAL streaming + follower applies must stay "
                           "race-free; default 1 = seed store)")
    race.set_defaults(func=_cmd_race)

    bisect = sub.add_parser(
        "bisect", help="run a seed twice and localize the first divergence")
    _add_run_args(bisect)
    bisect.add_argument("--perturb", type=int, default=None,
                        help="flip the order of the Kth dispatched event "
                             "in the second run (divergence fixture)")
    bisect.set_defaults(func=_cmd_bisect)

    rules = sub.add_parser("rules", help="print the rule catalog")
    rules.set_defaults(func=_cmd_rules)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
