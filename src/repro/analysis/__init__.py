"""Determinism & isolation analysis suite (DESIGN.md §12).

Three tools that mechanically check the invariants every reproduction
claim in this repo rests on — byte-identical converged etcd state,
base-seed chaos determinism, exact telemetry aggregates:

- :mod:`repro.analysis.linter` — an AST pass over the source tree with
  determinism rules D001–D006 (wall-clock use, unseeded randomness,
  unordered-set iteration, identity-based ordering, float priority
  accumulation, non-canonical hash inputs);
- :mod:`repro.analysis.racedetect` — an opt-in vector-clock race
  detector for sim processes, flagging shared-state accesses on
  :class:`~repro.storage.etcd.EtcdStore` and
  :class:`~repro.clientgo.cache.ObjectCache` that are not ordered by a
  kernel happens-before edge;
- :mod:`repro.analysis.bisect` — a replay-divergence bisector that runs
  the same seed twice with per-write state digests and binary-searches
  to the first divergent store event, with component attribution.

CLI: ``python -m repro.analysis {lint,race,bisect,rules}``.
"""

from .bisect import Divergence, ReplayRecorder, first_divergence
from .linter import LintResult, lint_paths, load_allowlist
from .racedetect import RaceConflict, RaceDetector
from .rules import RULES, Finding

__all__ = [
    "Divergence",
    "Finding",
    "LintResult",
    "RULES",
    "RaceConflict",
    "RaceDetector",
    "ReplayRecorder",
    "first_divergence",
    "lint_paths",
    "load_allowlist",
]
