"""Determinism & isolation analysis suite (DESIGN.md §12).

Three tools that mechanically check the invariants every reproduction
claim in this repo rests on — byte-identical converged etcd state,
base-seed chaos determinism, exact telemetry aggregates:

- :mod:`repro.analysis.linter` — an AST pass over the source tree with
  determinism rules D001–D006 (wall-clock use, unseeded randomness,
  unordered-set iteration, identity-based ordering, float priority
  accumulation, non-canonical hash inputs);
- :mod:`repro.analysis.racedetect` — an opt-in vector-clock race
  detector for sim processes, flagging shared-state accesses on
  :class:`~repro.storage.etcd.EtcdStore` and
  :class:`~repro.clientgo.cache.ObjectCache` that are not ordered by a
  kernel happens-before edge;
- :mod:`repro.analysis.bisect` — a replay-divergence bisector that runs
  the same seed twice with per-write state digests and binary-searches
  to the first divergent store event, with component attribution;
- :mod:`repro.analysis.staticcheck` — a whole-program concurrency &
  protocol checker with rules C001–C006 (blocking waits under locks,
  lock-order inversion, unowned module-level mutable state, orphaned
  timers/events, unfenced leader writes, affinity-dropping spawns),
  built on the project symbol table / call graph of
  :mod:`repro.analysis.callgraph` and the interprocedural lock graph of
  :mod:`repro.analysis.lockgraph`.

CLI: ``python -m repro.analysis {lint,staticcheck,race,bisect,rules}``.
"""

from .bisect import Divergence, ReplayRecorder, first_divergence
from .callgraph import Project
from .linter import LintResult, lint_paths, load_allowlist
from .lockgraph import LockGraph
from .racedetect import RaceConflict, RaceDetector
from .rules import RULES, Finding
from .staticcheck import CheckResult, check_paths

__all__ = [
    "CheckResult",
    "Divergence",
    "Finding",
    "LintResult",
    "LockGraph",
    "Project",
    "RULES",
    "RaceConflict",
    "RaceDetector",
    "ReplayRecorder",
    "check_paths",
    "first_divergence",
    "lint_paths",
    "load_allowlist",
]
