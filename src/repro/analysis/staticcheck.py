"""Whole-program concurrency & protocol checker (rules C001–C006).

Sibling of the per-module determinism linter: where the D-pack checks
that decisions are pure functions of the seed, the C-pack checks the
*protocols* the concurrent control planes rely on — lock discipline,
timer/event lifecycle, fencing, and affinity — over a project-wide
symbol table and call graph (:mod:`repro.analysis.callgraph`,
:mod:`repro.analysis.lockgraph`).

Rules
-----

C001  blocking kernel wait while holding a Lock/Semaphore
C002  lock-order inversion (cycle in the lock-acquisition graph)
C003  module-level mutable state written from sim-process code
C004  Timeout/Event created and dropped (orphaned timer)
C005  unfenced store write from a leader-elected component
C006  process spawned in an affinity scope without affinity

Suppressions reuse the linter's machinery: per-line
``# repro: allow[CXXX] why`` comments, the shared
``analysis-allowlist.txt``, and ``--strict`` staleness checks scoped to
the C-pack (the D-linter owns D-code staleness).  C003 additionally
honors a *definition-site* exemption — ``# repro: hb-carrier[why]`` on
the module-level assignment marks the object as a registered
happens-before carrier, exempting every write to it.

CLI: ``python -m repro.analysis staticcheck [paths] [--strict]
[--format text|json|sarif]``.
"""

import ast
import io
import json
import re
import tokenize

from .callgraph import Project, dotted_name
from .linter import LintResult, parse_suppressions
from .lockgraph import LockGraph
from .rules import RULES, Finding

_HB_CARRIER_RE = re.compile(r"#\s*repro:\s*hb-carrier\[([^\]]*)\]")

# Mutable module-level containers (C003).  itertools.count is included:
# next() on a shared counter is a write that diverges across schedules.
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "bytearray",
    "collections.defaultdict", "collections.deque",
    "collections.OrderedDict", "collections.Counter",
    "defaultdict", "deque", "OrderedDict", "Counter",
    "itertools.count", "count",
}

# Method calls that mutate a container in place (C003 write sites).
_MUTATOR_METHODS = {
    "append", "appendleft", "add", "update", "setdefault", "pop",
    "popleft", "popitem", "remove", "discard", "clear", "extend",
    "insert", "sort", "reverse",
}

# Kernel event constructors (C004).  Dotted ``.timeout``/``.event``
# factory calls are matched by suffix; bare ``Timeout``/``Event`` names
# only when the import resolves to the simkernel.
_SIM_EVENT_QUALS = {
    "repro.simkernel.Timeout", "repro.simkernel.events.Timeout",
    "repro.simkernel.Event", "repro.simkernel.events.Event",
}

# Leader-elected components whose write paths must be fenced (C005).
LEADER_ELECTED_CLASSES = ("ControllerManager", "StoreCoordinator",
                          "SyncerHA")

# Raw-store write methods (C005) when called on a ``...store`` object.
_STORE_WRITE_METHODS = {"put", "delete", "txn"}

# Spawn methods on sim-like receivers (C006).
_SPAWN_RECEIVERS = {"sim", "self.sim", "self", "syncer", "self.syncer"}


def parse_hb_carriers(source):
    """Line numbers carrying a ``# repro: hb-carrier[why]`` marker."""
    carriers = {}
    try:
        comments = [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(
                io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        comments = []
    for lineno, text in comments:
        match = _HB_CARRIER_RE.search(text)
        if match:
            carriers[lineno] = match.group(1).strip()
    return carriers


class _ModuleChecker(ast.NodeVisitor):
    """Per-module pass for C003/C004/C005/C006 (project-informed)."""

    def __init__(self, project, module, sim_reachable):
        self.project = project
        self.module = module
        self.sim_reachable = sim_reachable
        self.findings = []
        self.carriers = parse_hb_carriers(module.source)
        self.mutables = self._module_mutables()
        self._class_stack = []
        self._func_stack = []   # FunctionInfo stack

    def _emit(self, node, code, message):
        self.findings.append(Finding(
            self.module.path, node.lineno, node.col_offset, code, message))

    # -- module-level mutables (C003) ----------------------------------

    def _module_mutables(self):
        """name -> definition line of module-level mutable containers."""
        mutables = {}
        for node in self.module.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if not self._is_mutable_value(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) \
                        and target.id != "__all__":
                    mutables[target.id] = node.lineno
        return mutables

    def _is_mutable_value(self, value):
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                              ast.SetComp, ast.DictComp)):
            return True
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name is None:
                return False
            resolved = self._resolve(name)
            return resolved in _MUTABLE_CONSTRUCTORS \
                or name in _MUTABLE_CONSTRUCTORS
        return False

    def _resolve(self, name):
        head, _, rest = name.partition(".")
        if head in self.module.name_imports:
            base = self.module.name_imports[head]
            return f"{base}.{rest}" if rest else base
        if head in self.module.module_aliases:
            base = self.module.module_aliases[head]
            return f"{base}.{rest}" if rest else base
        return name

    def _mutable_target(self, name):
        """The module-level mutable ``name`` refers to, or None.

        Skips names shadowed by a local binding in the enclosing
        function and names whose definition is a registered carrier.
        """
        if name not in self.mutables:
            return None
        for info in self._func_stack:
            if name in self._local_bindings(info):
                return None
        if self.mutables[name] in self.carriers:
            return None
        return name

    _BINDINGS_ATTR = "_staticcheck_local_bindings"

    def _binding_lines(self, info):
        """name -> first binding line (0 for params) in ``info``."""
        cached = getattr(info.node, self._BINDINGS_ATTR, None)
        if cached is not None:
            return cached
        bindings = {name: 0 for name in info.params}
        hoisted = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, (ast.Store, ast.Del)):
                line = bindings.get(node.id)
                if line is None or node.lineno < line:
                    bindings[node.id] = node.lineno
            elif isinstance(node, ast.Global):
                # `global NAME` writes the module binding, not a local.
                hoisted.update(node.names)
        for name in sorted(hoisted):
            bindings.pop(name, None)
        setattr(info.node, self._BINDINGS_ATTR, bindings)
        return bindings

    def _local_bindings(self, info):
        return self._binding_lines(info)

    def _in_sim_code(self):
        return bool(self._func_stack) and any(
            info.qualname in self.sim_reachable
            for info in self._func_stack)

    def _check_mutation(self, name_node, how, node):
        if not isinstance(name_node, ast.Name):
            return
        target = self._mutable_target(name_node.id)
        if target is None or not self._in_sim_code():
            return
        self._emit(node, "C003",
                   f"module-level mutable {target!r} (defined at line "
                   f"{self.mutables[target]}) {how} from sim-process "
                   f"code with no registered happens-before carrier; "
                   f"own it per-Simulation, or mark the definition "
                   f"'# repro: hb-carrier[why]' if access is provably "
                   f"kernel-ordered")

    # -- scope bookkeeping ---------------------------------------------

    def visit_ClassDef(self, node):
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _qualname_for(self, node):
        parts = [self.module.name]
        if self._func_stack:
            parts = [self._func_stack[-1].qualname]
        elif self._class_stack:
            parts = [f"{self.module.name}.{self._class_stack[-1]}"]
        return ".".join(parts + [node.name])

    def _visit_func(self, node):
        info = self.project.functions.get(self._qualname_for(node))
        if info is None:
            self.generic_visit(node)
            return
        self._func_stack.append(info)
        self._check_orphan_events(info)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    # -- C004: orphaned Timeout/Event ----------------------------------

    def _event_ctor(self, call):
        """Short description if ``call`` creates a kernel event."""
        name = dotted_name(call.func)
        if name is None:
            return None
        if "." in name:
            base, _, tail = name.rpartition(".")
            # Factory calls only count on a sim-like receiver — other
            # objects legitimately expose .event()/.timeout() methods
            # (EventRecorder.event records a k8s Event, not a kernel
            # one).
            if tail in ("timeout", "event") and (
                    base in ("sim", "self.sim")
                    or base.endswith(".sim")):
                return f"{name}(...)"
        resolved = self._resolve(name)
        if resolved in _SIM_EVENT_QUALS:
            return f"{name}(...)"
        return None

    def _check_orphan_events(self, info):
        """Flag events created in ``info`` and dropped on every path."""
        body_nodes = []
        stack = list(info.node.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            body_nodes.append(node)
            stack.extend(ast.iter_child_nodes(node))

        loaded = set()
        for node in body_nodes:
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load):
                loaded.add(node.id)

        for node in body_nodes:
            # (a) bare expression statement: created, never bound.
            if isinstance(node, ast.Expr) \
                    and isinstance(node.value, ast.Call):
                ctor = self._event_ctor(node.value)
                if ctor is not None:
                    self._emit(
                        node, "C004",
                        f"{ctor} creates a kernel event that is "
                        f"dropped on the spot: nothing can await or "
                        f"cancel it, so it sits in the heap/wheel "
                        f"until its deadline (or, if it fails, "
                        f"crashes the run undefused)")
            # (b) bound to a local that is never read again.
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Call):
                ctor = self._event_ctor(node.value)
                if ctor is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id not in loaded:
                        self._emit(
                            node, "C004",
                            f"{ctor} is bound to {target.id!r} but "
                            f"{target.id!r} is never awaited, "
                            f"combined, stored, or returned — an "
                            f"orphaned timer/event")

    # -- C005 / C006 / C003 call & write sites -------------------------

    def _subscript_bases(self, targets):
        for target in targets:
            if isinstance(target, ast.Subscript):
                yield target.value
            elif isinstance(target, (ast.Tuple, ast.List)):
                yield from self._subscript_bases(target.elts)

    def visit_Assign(self, node):
        for base in self._subscript_bases(node.targets):
            self._check_mutation(base, "written by item assignment",
                                 node)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        for base in self._subscript_bases([node.target]):
            self._check_mutation(base, "written by item assignment",
                                 node)
        self.generic_visit(node)

    def visit_Delete(self, node):
        for base in self._subscript_bases(node.targets):
            self._check_mutation(base, "shrunk by del", node)
        self.generic_visit(node)

    def visit_Call(self, node):
        self._check_fencing(node)
        self._check_affinity(node)
        # C003: in-place mutator methods and next() on module mutables.
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in _MUTATOR_METHODS:
            self._check_mutation(func.value,
                                 f"mutated via .{func.attr}()", node)
        elif isinstance(func, ast.Name) and func.id == "next" \
                and node.args:
            self._check_mutation(node.args[0],
                                 "advanced via next()", node)
        self.generic_visit(node)

    def _in_leader_elected(self):
        return bool(self._class_stack) \
            and self._class_stack[-1] in LEADER_ELECTED_CLASSES

    def _check_fencing(self, node):
        if not self._in_leader_elected():
            return
        name = dotted_name(node.func)
        if name is None:
            return
        cls = self._class_stack[-1]
        if name.endswith(".transaction"):
            if not any(kw.arg == "fencing" for kw in node.keywords):
                self._emit(
                    node, "C005",
                    f"transaction() from leader-elected {cls} without "
                    f"fencing=; a deposed leader's in-flight writes "
                    f"would land after the new leader's fence barrier")
        elif "." in name:
            base, _, method = name.rpartition(".")
            if method in _STORE_WRITE_METHODS \
                    and base.rsplit(".", 1)[-1].endswith("store"):
                self._emit(
                    node, "C005",
                    f"raw store write {name}() from leader-elected "
                    f"{cls} bypasses the fencing-token check; route "
                    f"it through a fenced transaction")

    def _check_affinity(self, node):
        func = node.func
        if not isinstance(func, ast.Attribute) \
                or func.attr not in ("process", "spawn"):
            return
        base = dotted_name(func.value)
        if base not in _SPAWN_RECEIVERS:
            return
        if not node.args:
            return  # accessor/no-op, not a spawn
        if any(kw.arg == "affinity" for kw in node.keywords):
            return
        if not self._func_stack:
            return
        info = self._func_stack[-1]
        bindings = self._binding_lines(info)
        if "affinity" in bindings:
            return  # forwarding wrapper (spawn(..., affinity=affinity))
        # Only a tenant bound *before* the spawn counts as "in hand":
        # a later `for tenant in ...` loop doesn't scope earlier,
        # cluster-wide spawns (shard workers serving every tenant).
        tenant_line = bindings.get("tenant")
        if tenant_line is None or tenant_line > node.lineno:
            return
        self._emit(
            node, "C006",
            f"{base}.{func.attr}(...) spawned with a tenant in scope "
            f"but no affinity=; the process (and every event it "
            f"creates) falls off the tenant's partition — pass "
            f"affinity=tenant")


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


class CheckResult(LintResult):
    """C-pack findings bucketed by status (same shape as lint)."""


def _lock_findings(lock_graph):
    """C001/C002 findings from the lock graph, deterministic order."""
    findings = []
    for wait in lock_graph.waits:
        findings.append(Finding(
            wait.path, wait.line, wait.col, "C001",
            f"blocking kernel wait {wait.wait} while holding "
            f"{wait.lock_id!r} (in {wait.caller}); every FIFO waiter "
            f"on the lock stalls for the full wait — release first, "
            f"or suppress if the timed critical section is the model"))
    for component in lock_graph.cycles():
        cycle = " -> ".join(component + [component[0]])
        for edge in lock_graph.cycle_edges(component):
            via = f" via {edge.via}" if edge.via else ""
            findings.append(Finding(
                edge.path, edge.line, edge.col, "C002",
                f"lock-order inversion: {edge.acquired!r} acquired "
                f"while holding {edge.held!r}{via}, closing the cycle "
                f"[{cycle}]; acquire locks in one global order"))
    return findings


def check_paths(paths, allowlist=(), strict=False):
    """Run the C-rule pack over files/trees; returns a CheckResult."""
    project = Project.load(paths)
    sim_reachable = project.sim_reachable()
    lock_graph = LockGraph(project)

    by_path = {}
    for finding in _lock_findings(lock_graph):
        by_path.setdefault(finding.path, []).append(finding)

    result = CheckResult()
    used_allowlist = set()
    for name in sorted(project.modules):
        module = project.modules[name]
        result.files_checked += 1
        checker = _ModuleChecker(project, module, sim_reachable)
        checker.visit(module.tree)
        findings = checker.findings + by_path.get(module.path, [])
        findings.sort(key=lambda f: (f.line, f.col, f.code, f.message))
        suppressions, _errors = parse_suppressions(module.source,
                                                   module.path)
        # Unknown-code suppression errors are the D-linter's to report
        # (it owns the comment syntax); re-reporting them here would
        # double every D000.
        used_suppressions = set()
        for finding in findings:
            codes = suppressions.get(finding.line, ())
            if finding.code in codes:
                finding.status = "suppressed"
                used_suppressions.add((finding.line, finding.code))
                result.suppressed.append(finding)
                continue
            allow = next(
                (entry for entry in allowlist
                 if module.path.endswith(entry[0])
                 and finding.code == entry[1]),
                None)
            if allow is not None:
                finding.status = "allowlisted"
                used_allowlist.add(allow)
                result.allowlisted.append(finding)
                continue
            result.active.append(finding)
        if strict:
            for lineno, codes in sorted(suppressions.items()):
                for code in sorted(codes):
                    if not code.startswith("C"):
                        continue  # D-code staleness belongs to lint
                    if (lineno, code) not in used_suppressions:
                        result.stale.append(Finding(
                            module.path, lineno, 0, "C000",
                            f"stale suppression: no {code} finding on "
                            f"this line (remove the allow comment)"))
    if strict:
        for entry in allowlist:
            if not entry[1].startswith("C"):
                continue
            if entry not in used_allowlist:
                result.stale.append(Finding(
                    entry[0], 0, 0, "C000",
                    f"stale allowlist entry: no {entry[1]} finding "
                    f"matches {entry[0]!r}"))
    result.active.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    result.stale.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------


def format_json(result):
    """Machine-readable report: findings + summary counters."""
    return json.dumps({
        "findings": [f.to_dict() for f in result.active + result.stale],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "allowlisted": [f.to_dict() for f in result.allowlisted],
        "files_checked": result.files_checked,
        "ok": result.ok,
    }, indent=2, sort_keys=True)


def format_sarif(result):
    """SARIF 2.1.0 report (one run, rule metadata included)."""
    codes = sorted({f.code for f in result.all_findings()} | {
        code for code in RULES if code.startswith("C")})
    rules = []
    for code in codes:
        rule = RULES[code]
        rules.append({
            "id": code,
            "name": rule.title,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
        })
    results = []
    for finding in result.active + result.stale:
        results.append({
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        })
    return json.dumps({
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro.analysis.staticcheck",
                "informationUri": "https://example.invalid/repro",
                "rules": rules,
            }},
            "results": results,
        }],
    }, indent=2, sort_keys=True)
