"""Opt-in vector-clock race detector for the sim kernel.

Model
-----

Every sim :class:`~repro.simkernel.process.Process` gets a vector-clock
component (pid); top-level driver code is pid 0 ("main").  Happens-before
edges are exactly the kernel's causal paths:

- *event edges*: scheduling an event stamps it with the scheduler's
  clock; when the kernel dispatches it, every process resumed by it
  merges that stamp (``on_step``).  This covers succeed/fail, timeouts,
  interrupts, contended lock/semaphore hand-off, and direct channel
  hand-off — they all flow through ``Simulation._schedule``.
- *buffer edges*: values parked in a :class:`Channel` buffer and items
  parked in a work queue carry the producer's stamp alongside, merged
  into the consumer when popped (the event edge alone would miss the
  producer because the consumer's wake-up event is stamped by the
  consumer side).
- *release-acquire stores*: an :class:`EtcdStore` ``create`` or a
  CAS-guarded ``update``/``delete`` (``expected_revision`` given) is a
  synchronization point — the revision check already serializes writers,
  so the writer acquires all prior write stamps for the key and its new
  stamp dominates.  A *blind* write (no ``expected_revision``) gets no
  such edge and is checked for conflicts.

A **conflict** is a blind write (or, with ``track_reads=True``, a read)
by one pid that is concurrent with — not ordered after — another pid's
write to the same key of the same object.  With every store write in the
apiserver CAS-guarded, a healthy run reports zero conflicts; a conflict
means two components mutate shared state with no event edge between
them, i.e. their relative order is a scheduling accident.

Approximations (documented, deliberate): work executed in bare event
callbacks (no active process) is attributed to pid 0 with the dispatch
context merged in, so two callbacks racing against *each other* are not
flagged; per-key access history is bounded (old accesses age out).
"""


class _Access:
    """One recorded access: who, with what clock, when."""

    __slots__ = ("pid", "stamp", "time", "op")

    def __init__(self, pid, stamp, time, op):
        self.pid = pid
        self.stamp = stamp
        self.time = time
        self.op = op


class RaceConflict:
    """A pair of accesses to the same key with no happens-before edge."""

    __slots__ = ("obj", "key", "kind", "first_pid", "first_name",
                 "first_time", "second_pid", "second_name", "second_time")

    def __init__(self, obj, key, kind, first_pid, first_name, first_time,
                 second_pid, second_name, second_time):
        self.obj = obj
        self.key = key
        self.kind = kind
        self.first_pid = first_pid
        self.first_name = first_name
        self.first_time = first_time
        self.second_pid = second_pid
        self.second_name = second_name
        self.second_time = second_time

    def format(self):
        return (f"{self.kind} conflict on {self.obj}[{self.key}]: "
                f"{self.first_name!r} (t={self.first_time:.6f}) vs "
                f"{self.second_name!r} (t={self.second_time:.6f}) "
                f"— no happens-before edge orders these accesses")

    def __repr__(self):
        return f"<RaceConflict {self.kind} {self.obj}[{self.key}]>"


# Per-object, per-key access records kept (older ones age out; a race
# against an aged-out access this many writes back is long since ordered
# or long since reported).
_HISTORY_PER_KEY = 8


class _ObjectProbe:
    """Bound (detector, object-name) pair handed to sim-less objects."""

    __slots__ = ("detector", "name")

    def __init__(self, detector, name):
        self.detector = detector
        self.name = name

    def write(self, key):
        self.detector.on_write(self.name, key, release=False)

    def read(self, key):
        self.detector.on_read(self.name, key)

    def scan(self, prefix=""):
        self.detector.on_scan(self.name, prefix)


class RaceDetector:
    """Attachable detector; construct with the sim *before* the env.

    ``track_reads=True`` additionally records ``get``/``list`` accesses
    and flags read-write conflicts.  Off by default: level-triggered
    reads (scanners, informer lookups) racing a CAS writer are by design
    in this codebase — the read retries or reconciles — so read checking
    is a diagnostic mode, not a correctness gate.
    """

    def __init__(self, sim, track_reads=False, max_conflicts=200):
        self.sim = sim
        self.track_reads = track_reads
        self.max_conflicts = max_conflicts
        self.conflicts = []
        self._clocks = {0: {}}
        self._names = {0: "main"}
        self._next_pid = 1
        self._context = None
        self._writes = {}   # obj -> key -> [_Access]
        self._reads = {}    # obj -> key -> [_Access]
        self._scans = {}    # obj -> [(prefix, _Access)]
        self._seen = set()
        self._probe_seq = 0
        sim.race_detector = self

    # ------------------------------------------------------------------
    # Vector-clock plumbing (kernel hooks)
    # ------------------------------------------------------------------

    @staticmethod
    def _merge(clock, stamp):
        for pid, tick in stamp.items():
            if clock.get(pid, 0) < tick:
                clock[pid] = tick

    @staticmethod
    def _leq(stamp, clock):
        for pid, tick in stamp.items():
            if clock.get(pid, 0) < tick:
                return False
        return True

    def merge_stamps(self, a, b):
        """Merged copy of two (possibly None) stamps."""
        merged = dict(a) if a else {}
        if b:
            self._merge(merged, b)
        return merged

    def register_process(self, process):
        pid = self._next_pid
        self._next_pid += 1
        process._race_pid = pid
        self._clocks[pid] = {}
        self._names[pid] = getattr(process, "name", None) or f"proc-{pid}"
        return pid

    def _acting(self):
        """(pid, clock) of whoever is executing right now."""
        process = self.sim._active_process
        if process is not None:
            pid = getattr(process, "_race_pid", None)
            if pid is None:
                pid = self.register_process(process)
        else:
            pid = 0
        clock = self._clocks[pid]
        if pid == 0 and self._context:
            # Bare-callback context: main acts with the dispatched
            # item's knowledge (the documented approximation).
            self._merge(clock, self._context)
        return pid, clock

    def _tick(self, pid):
        clock = self._clocks[pid]
        clock[pid] = clock.get(pid, 0) + 1
        return clock

    def current_stamp(self):
        """Stamp for an outgoing message/event from the current actor."""
        pid, clock = self._acting()
        if self.sim._active_process is None and self._context:
            return dict(clock)
        self._tick(pid)
        return dict(clock)

    def absorb(self, stamp):
        """Merge a carried stamp into the current actor's clock."""
        if not stamp:
            return
        _pid, clock = self._acting()
        self._merge(clock, stamp)

    # Called by Simulation._schedule / _schedule_callback.

    def stamp_event(self, event):
        stamp = self.current_stamp()
        acc = getattr(event, "_race_acc", None)
        if acc:
            stamp = self.merge_stamps(stamp, acc)
        event._race_stamp = stamp

    def stamp_callback(self, fn):
        try:
            fn._race_stamp = self.current_stamp()
        except AttributeError:
            pass  # bound methods reject attributes; loses one edge only

    # Called by the run loop around each dispatched item.

    def begin_dispatch(self, stamp):
        self._context = stamp

    def end_dispatch(self):
        self._context = None

    def context_stamp(self):
        return self._context

    # Called by Process._step before resuming the generator.

    def on_step(self, process):
        pid = getattr(process, "_race_pid", None)
        if pid is None:
            pid = self.register_process(process)
        clock = self._clocks[pid]
        if self._context:
            self._merge(clock, self._context)
        clock[pid] = clock.get(pid, 0) + 1

    # ------------------------------------------------------------------
    # Access probes (stores and caches call these)
    # ------------------------------------------------------------------

    def on_write(self, obj, key, release=False):
        pid, clock = self._acting()
        records = self._writes.setdefault(obj, {}).setdefault(key, [])
        if release:
            # CAS/create: serialized by the revision check — acquire
            # every prior writer's knowledge, then dominate.
            for record in records:
                self._merge(clock, record.stamp)
        else:
            for record in records:
                if record.pid != pid and not self._leq(record.stamp, clock):
                    self._conflict(obj, key, "write-write", record, pid)
            if self.track_reads:
                for record in self._reads.get(obj, {}).get(key, ()):
                    if record.pid != pid and \
                            not self._leq(record.stamp, clock):
                        self._conflict(obj, key, "read-write", record, pid)
                for prefix, record in self._scans.get(obj, ()):
                    if key.startswith(prefix) and record.pid != pid and \
                            not self._leq(record.stamp, clock):
                        self._conflict(obj, key, "read-write", record, pid)
        self._tick(pid)
        if release:
            del records[:]
        records.append(_Access(pid, dict(clock), self.sim.now, "write"))
        del records[:-_HISTORY_PER_KEY]

    def on_read(self, obj, key):
        if not self.track_reads:
            return
        pid, clock = self._acting()
        for record in self._writes.get(obj, {}).get(key, ()):
            if record.pid != pid and not self._leq(record.stamp, clock):
                self._conflict(obj, key, "read-write", record, pid)
        self._tick(pid)
        records = self._reads.setdefault(obj, {}).setdefault(key, [])
        records.append(_Access(pid, dict(clock), self.sim.now, "read"))
        del records[:-_HISTORY_PER_KEY]

    def on_scan(self, obj, prefix):
        if not self.track_reads:
            return
        pid, clock = self._acting()
        for key, key_records in self._writes.get(obj, {}).items():
            if not key.startswith(prefix):
                continue
            for record in key_records:
                if record.pid != pid and not self._leq(record.stamp, clock):
                    self._conflict(obj, key, "read-write", record, pid)
        self._tick(pid)
        scans = self._scans.setdefault(obj, [])
        scans.append((prefix, _Access(pid, dict(clock), self.sim.now,
                                      "scan")))
        del scans[:-_HISTORY_PER_KEY]

    def cache_probe(self, label):
        """A per-instance probe for objects without a sim reference
        (:class:`~repro.clientgo.cache.ObjectCache`).  The sequence
        suffix keeps same-named caches on different control planes from
        sharing an access graph."""
        self._probe_seq += 1
        return _ObjectProbe(self, f"{label}#{self._probe_seq}")

    def reset_object(self, obj):
        """Forget an object's history (store wiped/restored: the old
        access graph no longer describes reachable state)."""
        self._writes.pop(obj, None)
        self._reads.pop(obj, None)
        self._scans.pop(obj, None)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _conflict(self, obj, key, kind, record, pid):
        dedup = (obj, key, kind, min(record.pid, pid), max(record.pid, pid))
        if dedup in self._seen or len(self.conflicts) >= self.max_conflicts:
            return
        self._seen.add(dedup)
        self.conflicts.append(RaceConflict(
            obj, key, kind,
            record.pid, self._names.get(record.pid, f"proc-{record.pid}"),
            record.time,
            pid, self._names.get(pid, f"proc-{pid}"), self.sim.now))

    @property
    def ok(self):
        return not self.conflicts

    def report(self):
        lines = [f"race detector: {len(self.conflicts)} conflict(s), "
                 f"{self._next_pid} process clock(s), "
                 f"track_reads={self.track_reads}"]
        lines.extend(conflict.format() for conflict in self.conflicts)
        return "\n".join(lines)


def run_under_detector(seed, tenants=2, pods_per_tenant=3, nodes=3,
                       horizon=30.0, track_reads=False, store_replicas=1):
    """One small deployment run with the detector on; returns it.

    This is the CLI/CI entry: a healthy build reports zero conflicts
    because every apiserver store write is CAS-guarded (release-acquire)
    and all cross-process hand-off flows through kernel edges.

    ``store_replicas >= 2`` runs the super cluster on a replicated
    store (DESIGN.md §13): WAL records carry the writer's vector stamp
    and each follower apply absorbs it, so replication must add no
    unordered cross-process access either.
    """
    from repro.core.env import VirtualClusterEnv
    from repro.simkernel.loop import Simulation

    sim = Simulation(seed=seed)
    detector = RaceDetector(sim, track_reads=track_reads)
    env = VirtualClusterEnv(
        seed=seed, sim=sim, num_virtual_nodes=nodes,
        scan_interval=5.0, dws_workers=2, uws_workers=2,
        store_replicas=store_replicas if store_replicas > 1 else None)
    env.bootstrap()
    handles = [env.run_coroutine(env.create_tenant(f"tenant-{i}"))
               for i in range(tenants)]
    for handle in handles:
        for index in range(pods_per_tenant):
            env.run_coroutine(handle.create_pod(f"pod-{index}"))
    env.run_for(horizon)
    return detector
