"""The standard kubeproxy: programs the *host* iptables.

Watches Services and Endpoints and keeps DNAT rules for every cluster-IP
service in the node's host network stack.  This works for runc-style
containers that share the host stack — and silently fails for Kata
containers attached to a tenant VPC, whose traffic never traverses the
host stack.  That failure is the data-plane gap VirtualCluster closes.
"""


class KubeProxy:
    """One node's service proxy."""

    def __init__(self, sim, node_name, informer_factory, host_stack, config,
                 sync_interval=5.0):
        self.sim = sim
        self.node_name = node_name
        self.host_stack = host_stack
        self.config = config
        self.sync_interval = sync_interval
        self._services = informer_factory.informer("services")
        self._endpoints = informer_factory.informer("endpoints")
        self._services.add_handlers(
            on_add=lambda o: self._mark_dirty(),
            on_update=lambda old, new: self._mark_dirty(),
            on_delete=lambda o: self._mark_dirty(),
        )
        self._endpoints.add_handlers(
            on_add=lambda o: self._mark_dirty(),
            on_update=lambda old, new: self._mark_dirty(),
            on_delete=lambda o: self._mark_dirty(),
        )
        self._dirty = False
        self._stopped = False
        self._process = None
        self.sync_count = 0
        self.last_sync_duration = 0.0

    def _mark_dirty(self):
        self._dirty = True

    def start(self):
        self._process = self.sim.spawn(
            self._sync_loop(), name=f"kubeproxy-{self.node_name}")
        return self._process

    def stop(self):
        self._stopped = True
        if self._process is not None:
            self._process.interrupt("kubeproxy stopped")

    def desired_rules(self):
        """Current (cluster_ip, port, endpoints) tuples from the caches."""
        endpoints_by_key = {ep.key: ep
                            for ep in self._endpoints.cache.items()}
        rules = []
        for service in self._services.cache.items():
            cluster_ip = service.spec.cluster_ip
            if not cluster_ip or cluster_ip == "None":
                continue
            endpoints = endpoints_by_key.get(service.key)
            backend_ips = endpoints.ready_ips() if endpoints else []
            for port in service.spec.ports:
                backends = [(ip, port.target_port or port.port)
                            for ip in backend_ips]
                rules.append((cluster_ip, port.port, backends))
        return rules

    def _sync_loop(self):
        from repro.simkernel.errors import Interrupt

        while not self._stopped:
            try:
                if self._dirty:
                    self._dirty = False
                    yield from self.sync_once()
                yield self.sim.timeout(0.05 if self._dirty
                                       else self.sync_interval / 50)
            except Interrupt:
                return

    def sync_once(self):
        """Coroutine: program the host iptables to the desired state."""
        started = self.sim.now
        desired = self.desired_rules()
        desired_keys = set()
        for cluster_ip, port, backends in desired:
            desired_keys.add((cluster_ip, port, "TCP"))
            yield self.sim.timeout(self.config.network.host_iptable_update)
            self.host_stack.iptables.replace_service(cluster_ip, port,
                                                     backends)
        for rule in self.host_stack.iptables.rules():
            key = (rule.cluster_ip, rule.port, rule.protocol)
            if key not in desired_keys:
                yield self.sim.timeout(
                    self.config.network.host_iptable_update)
                self.host_stack.iptables.remove_service(*key)
        self.sync_count += 1
        self.last_sync_duration = self.sim.now - started
