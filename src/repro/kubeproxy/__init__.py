"""kubeproxy: standard host-iptables proxier and the VPC-aware enhanced one."""

from .enhanced import EnhancedKubeProxy
from .proxier import KubeProxy

__all__ = ["EnhancedKubeProxy", "KubeProxy"]
