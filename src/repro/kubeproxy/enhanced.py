"""The enhanced kubeproxy (paper §III-B(4)).

In VPC environments pod traffic bypasses the host network stack, so the
stock kubeproxy's host-iptables rules never apply.  The enhanced proxy
keeps a secure gRPC channel to the Kata agent inside every guest OS on
its node and injects/updates the service routing rules **in each guest's
iptables**.  It watches Pod creations and coordinates with the Pod's
init container so rules land before workload containers start, and its
periodic reconcile loop scans every guest's installed rules (the ~300 ms
cost the paper measures for thirty Pods, §IV-E).
"""

from repro.network import RpcChannel, RpcError
from repro.simkernel.errors import Interrupt

from .proxier import KubeProxy


class EnhancedKubeProxy(KubeProxy):
    """Host-rule proxy + per-guest rule injection."""

    def __init__(self, sim, node_name, informer_factory, host_stack, config,
                 sync_interval=5.0, reconcile_interval=2.0):
        super().__init__(sim, node_name, informer_factory, host_stack,
                         config, sync_interval=sync_interval)
        self.reconcile_interval = reconcile_interval
        self._channels = {}
        self._reconciler = None
        self.injections = {}
        self.injection_latency_total = 0.0
        self.injection_count = 0
        self.last_scan_duration = 0.0
        self.scan_count = 0

    # ------------------------------------------------------------------
    # Sandbox registration (called by the kubelet when a guest boots)
    # ------------------------------------------------------------------

    def on_sandbox_started(self, sandbox, agent):
        """Open the gRPC channel and inject the current rule set."""
        if sandbox.sandbox_id in self._channels:
            return
        channel = RpcChannel(self.sim, agent.rpc,
                             self.config.network.grpc_round_trip)
        self._channels[sandbox.sandbox_id] = (channel, agent, sandbox)
        self.sim.spawn(self._initial_injection(sandbox.sandbox_id),
                       name=f"inject-{sandbox.sandbox_id}")

    def on_sandbox_stopped(self, sandbox):
        self._channels.pop(sandbox.sandbox_id, None)

    def _initial_injection(self, sandbox_id):
        entry = self._channels.get(sandbox_id)
        if entry is None:
            return
        channel, agent, _sandbox = entry
        started = self.sim.now
        rules = self.desired_rules()
        try:
            yield from channel.call("apply_routing_rules",
                                    {"rules": rules, "final": True})
        except RpcError:
            self._channels.pop(sandbox_id, None)
            return
        elapsed = self.sim.now - started
        self.injections[sandbox_id] = elapsed
        self.injection_latency_total += elapsed
        self.injection_count += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        process = super().start()
        self._reconciler = self.sim.spawn(
            self._reconcile_loop(), name=f"ekp-reconcile-{self.node_name}")
        return process

    def stop(self):
        super().stop()
        if self._reconciler is not None:
            self._reconciler.interrupt("enhanced kubeproxy stopped")

    # ------------------------------------------------------------------
    # Guest synchronization
    # ------------------------------------------------------------------

    def sync_once(self):
        """Host rules first, then push updates to every guest."""
        yield from super().sync_once()
        rules = self.desired_rules()
        for sandbox_id in list(self._channels):
            entry = self._channels.get(sandbox_id)
            if entry is None:
                continue
            channel, _agent, _sandbox = entry
            try:
                yield from channel.call("apply_routing_rules",
                                        {"rules": rules, "final": False})
            except RpcError:
                self._channels.pop(sandbox_id, None)

    def _reconcile_loop(self):
        """Periodic scan of all guests' rule tables (paper §IV-E)."""
        while not self._stopped:
            try:
                yield self.sim.timeout(self.reconcile_interval)
                yield from self.scan_all_guests()
            except Interrupt:
                return

    def scan_all_guests(self):
        """Coroutine: verify every guest holds the desired rules."""
        started = self.sim.now
        desired = self.desired_rules()
        desired_index = {(ip, port): endpoints
                         for ip, port, endpoints in desired}
        for sandbox_id in list(self._channels):
            entry = self._channels.get(sandbox_id)
            if entry is None:
                continue
            channel, _agent, _sandbox = entry
            try:
                state = yield from channel.call("scan_rules", {})
            except RpcError:
                self._channels.pop(sandbox_id, None)
                continue
            installed = {(ip, port): endpoints
                         for ip, port, endpoints in state["rules"]}
            missing = [
                (ip, port, endpoints)
                for (ip, port), endpoints in desired_index.items()
                if installed.get((ip, port)) != [list(e) for e in endpoints]
                and installed.get((ip, port)) != endpoints
            ]
            stale = [key for key in installed if key not in desired_index]
            if missing:
                try:
                    yield from channel.call(
                        "apply_routing_rules",
                        {"rules": missing, "final": False})
                except RpcError:
                    self._channels.pop(sandbox_id, None)
                    continue
            for ip, port in stale:
                try:
                    yield from channel.call(
                        "remove_routing_rule",
                        {"cluster_ip": ip, "port": port})
                except RpcError:
                    break
        self.scan_count += 1
        self.last_scan_duration = self.sim.now - started

    @property
    def connected_guests(self):
        return len(self._channels)

    @property
    def mean_injection_latency(self):
        if not self.injection_count:
            return 0.0
        return self.injection_latency_total / self.injection_count
