"""Cross-component span tracing.

Generalizes the Pod-only ``PodTrace`` to arbitrary operations: an
apiserver request, an etcd transaction, a syncer DWS/UWS item, a
scheduler bind, a kubelet pod start.  Each :class:`Span` records its
operation name, tenant attribution, start/end in simulated time, and a
link to its parent span.

Parent propagation uses per-process span stacks: the simulation kernel
runs one generator chain per process, and synchronous calls plus
``yield from`` delegation stay within that chain, so "the innermost
open span of the active process" is exactly the semantic parent.  When
the syncer's DWS worker (one process) calls the apiserver (a plain
``yield from``), the apiserver's request span auto-parents to the DWS
span — no context threading through call signatures.

The tracer keeps only a bounded ring of finished spans (for inspection
and the export CLI) while folding every finished span into exact
aggregate counters and registry histograms, so soaks can't leak memory
through tracing either.
"""

from collections import deque


class Span:
    """One timed operation, attributed to a tenant, linked to a parent."""

    __slots__ = ("span_id", "parent_id", "name", "tenant", "start",
                 "end", "attrs")

    def __init__(self, span_id, parent_id, name, tenant, start, attrs=None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.tenant = tenant
        self.start = start
        self.end = None
        self.attrs = attrs or {}

    @property
    def duration(self):
        if self.end is None:
            return None
        return self.end - self.start

    def __repr__(self):
        dur = "open" if self.end is None else f"{self.duration:.6f}s"
        parent = f" parent={self.parent_id}" if self.parent_id else ""
        return (f"Span({self.span_id} {self.name} tenant={self.tenant} "
                f"{dur}{parent})")


class _SpanContext:
    """``with tracer.span(...)`` guard; safe across generator yields."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer, span):
        self.tracer = tracer
        self.span = span

    def __enter__(self):
        return self.span

    def __exit__(self, exc_type, exc, tb):
        self.tracer.finish(self.span, error=exc_type is not None)
        return False


class _NoopSpanContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_CONTEXT = _NoopSpanContext()


class SpanTracer:
    """Span factory with per-process parent stacks and exact aggregates.

    ``clock``
        callable returning current simulated time.
    ``active_context``
        callable returning a hashable key for the currently running
        process (or None outside any process); parent lookup and stack
        push/pop are scoped per key so interleaved processes never see
        each other's open spans as parents.
    ``registry``
        optional :class:`~repro.telemetry.registry.MetricsRegistry`;
        finished spans observe into ``span_duration_seconds{name=...}``
        and count into ``spans_total{name=...}``.
    """

    def __init__(self, clock, active_context=None, registry=None,
                 retain=512, enabled=True):
        self.clock = clock
        self.active_context = active_context or (lambda: None)
        self.enabled = enabled
        self.retain = retain
        self._next_id = 0
        self._stacks = {}            # context key -> [open spans]
        self.finished = deque(maxlen=retain)
        # Exact aggregates, never evicted: name -> [count, errors, sum].
        self._agg = {}
        if registry is not None and enabled:
            self._spans_total = registry.counter(
                "spans_total", "finished spans", labels=("name",))
            self._span_errors = registry.counter(
                "span_errors_total", "spans finished with an exception",
                labels=("name",))
            self._span_duration = registry.histogram(
                "span_duration_seconds", "span durations",
                labels=("name",))
        else:
            self._spans_total = None
            self._span_errors = None
            self._span_duration = None

    # ------------------------------------------------------------------

    def span(self, name, tenant="", **attrs):
        """Open a span as a context manager; auto-parents to the
        innermost open span of the active process."""
        if not self.enabled:
            return _NOOP_CONTEXT
        return _SpanContext(self, self.start(name, tenant=tenant, **attrs))

    def start(self, name, tenant="", **attrs):
        """Open a span explicitly (pair with :meth:`finish`)."""
        self._next_id += 1
        key = self.active_context()
        stack = self._stacks.get(key)
        parent = stack[-1] if stack else None
        span = Span(self._next_id,
                    parent.span_id if parent is not None else None,
                    name,
                    tenant or (parent.tenant if parent is not None else ""),
                    self.clock(), attrs=attrs or None)
        if stack is None:
            stack = []
            self._stacks[key] = stack
        stack.append(span)
        return span

    def finish(self, span, error=False):
        span.end = self.clock()
        key = self.active_context()
        stack = self._stacks.get(key)
        # Remove from whichever stack holds it; nested with-blocks make
        # this the top of the active stack in practice.
        if stack and span in stack:
            stack.remove(span)
            if not stack:
                del self._stacks[key]
        else:
            for other_key, other in list(self._stacks.items()):
                if span in other:
                    other.remove(span)
                    if not other:
                        del self._stacks[other_key]
                    break
        self.finished.append(span)
        agg = self._agg.get(span.name)
        if agg is None:
            agg = [0, 0, 0.0]
            self._agg[span.name] = agg
        agg[0] += 1
        agg[2] += span.duration
        if error:
            agg[1] += 1
        if self._spans_total is not None:
            self._spans_total.labels(name=span.name).inc()
            self._span_duration.labels(name=span.name).observe(span.duration)
            if error:
                self._span_errors.labels(name=span.name).inc()

    # ------------------------------------------------------------------

    def open_spans(self):
        """Spans started but not finished (debugging aid)."""
        return [span for stack in self._stacks.values() for span in stack]

    def children_of(self, span):
        """Finished spans whose parent is ``span`` (retained ring only)."""
        return [s for s in self.finished if s.parent_id == span.span_id]

    def aggregates(self):
        """Exact per-name aggregates (survive ring eviction), sorted.

        Returns ``{name: {"count", "errors", "total_seconds",
        "mean_seconds"}}`` — the deterministic span section of the
        telemetry snapshot (raw span ids are process-run dependent and
        deliberately excluded).
        """
        out = {}
        for name in sorted(self._agg):
            count, errors, total = self._agg[name]
            out[name] = {
                "count": count,
                "errors": errors,
                "total_seconds": total,
                "mean_seconds": total / count if count else 0.0,
            }
        return out
