"""Prometheus-style in-process metrics registry.

One :class:`MetricsRegistry` per simulation holds *families* of labeled
instruments — :class:`Counter`, :class:`Gauge`, :class:`Histogram` — the
way a Prometheus client library does:

- a family is identified by name and declares its label names up front;
- ``family.labels(tenant="acme")`` resolves (and memoizes) one *child*
  per label-value combination, so hot paths pay a dict lookup once and a
  float add per event afterwards;
- snapshots are deterministic: families sort by name, children by label
  values, and the only timestamp is the simulation clock — two same-seed
  runs export byte-identical snapshots.

The registry has a cheap no-op mode (``enabled=False``): every factory
returns a shared do-nothing family, so instrumented components don't
branch at each call site.

This module is dependency-free (the clock is an injected callable), so
the simulation kernel can own a registry without a layering cycle.
"""

from bisect import bisect_left

# Default upper bounds (seconds) spanning the sub-millisecond request
# path up to the multi-second Pod pipeline tails the paper reports.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0, 20.0, 30.0, 60.0)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        self.value += amount


class Gauge:
    """A value that can go up, down, or be computed at snapshot time."""

    __slots__ = ("value", "_fn")

    def __init__(self):
        self.value = 0.0
        self._fn = None

    def set(self, value):
        self.value = float(value)

    def inc(self, amount=1.0):
        self.value += amount

    def dec(self, amount=1.0):
        self.value -= amount

    def set_function(self, fn):
        """Evaluate ``fn()`` lazily at snapshot time (zero hot-path cost)."""
        self._fn = fn

    def read(self):
        if self._fn is not None:
            return float(self._fn())
        return self.value


class Histogram:
    """Fixed-bucket histogram (cumulative counts, sum, total count)."""

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds):
        self.bounds = tuple(sorted(bounds))
        # counts[i] observations <= bounds[i]; counts[-1] is +inf overflow.
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value):
        self.count += 1
        self.sum += value
        self.counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def cumulative(self):
        """Cumulative counts per bucket (Prometheus ``le`` semantics)."""
        out = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q):
        """Estimate the q-quantile (q in [0, 1]) by linear interpolation
        within the bucket containing the target rank."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        low = 0.0
        for index, count in enumerate(self.counts):
            if count == 0:
                if index < len(self.bounds):
                    low = self.bounds[index]
                continue
            if running + count >= target:
                high = (self.bounds[index] if index < len(self.bounds)
                        else low)
                frac = (target - running) / count
                return low + (high - low) * min(max(frac, 0.0), 1.0)
            running += count
            low = self.bounds[index] if index < len(self.bounds) else low
        return self.bounds[-1] if self.bounds else 0.0


_CHILD_TYPES = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class Family:
    """All children of one named metric, keyed by label values."""

    __slots__ = ("name", "kind", "help", "label_names", "_children",
                 "_buckets", "_default")

    def __init__(self, name, kind, help="", labels=(), buckets=None):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(labels)
        self._children = {}
        self._buckets = tuple(buckets) if buckets else DEFAULT_BUCKETS
        self._default = None

    def labels(self, **labelset):
        """The child for this label-value combination (memoized).

        Keyword order does not matter: values are keyed in declared
        label-name order, so ``labels(a=1, b=2)`` and ``labels(b=2, a=1)``
        resolve to the same child.
        """
        try:
            key = tuple(str(labelset[name]) for name in self.label_names)
        except KeyError as exc:
            raise ValueError(
                f"{self.name}: missing label {exc.args[0]!r} "
                f"(declared: {self.label_names})") from exc
        if len(labelset) != len(self.label_names):
            extra = set(labelset) - set(self.label_names)
            raise ValueError(f"{self.name}: unknown labels {sorted(extra)}")
        child = self._children.get(key)
        if child is None:
            if self.kind == HISTOGRAM:
                child = Histogram(self._buckets)
            else:
                child = _CHILD_TYPES[self.kind]()
            self._children[key] = child
        return child

    # Label-less convenience: the family acts as its own single child.

    def _solo(self):
        if self.label_names:
            raise ValueError(
                f"{self.name} declares labels {self.label_names}; "
                "use .labels(...)")
        if self._default is None:
            self._default = self.labels()
        return self._default

    def inc(self, amount=1.0):
        self._solo().inc(amount)

    def set(self, value):
        self._solo().set(value)

    def dec(self, amount=1.0):
        self._solo().dec(amount)

    def set_function(self, fn):
        self._solo().set_function(fn)

    def observe(self, value):
        self._solo().observe(value)

    def children(self):
        """(label_values_tuple, child) pairs sorted by label values."""
        return sorted(self._children.items())

    def total(self):
        """Sum of all children's values (counters/gauges) or counts."""
        if self.kind == HISTOGRAM:
            return sum(child.count for child in self._children.values())
        if self.kind == GAUGE:
            return sum(child.read() for child in self._children.values())
        return sum(child.value for child in self._children.values())


class _NoopChild:
    """Shared do-nothing instrument for disabled registries."""

    __slots__ = ()

    def inc(self, amount=1.0):
        pass

    def set(self, value):
        pass

    def dec(self, amount=1.0):
        pass

    def set_function(self, fn):
        pass

    def observe(self, value):
        pass

    def labels(self, **labelset):
        return self

    def children(self):
        return []

    def total(self):
        return 0.0

    # Histogram-reader compatibility so report code needn't branch.
    value = 0.0
    count = 0
    sum = 0.0


NOOP = _NoopChild()


class MetricsRegistry:
    """Named metric families with deterministic snapshots.

    ``clock`` supplies the snapshot timestamp — wire it to ``sim.now`` so
    exports are stamped in simulated (deterministic) time, never wall
    time.
    """

    def __init__(self, clock=None, enabled=True):
        self.clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self._families = {}

    # ------------------------------------------------------------------
    # Factories (idempotent per name)
    # ------------------------------------------------------------------

    def _family(self, name, kind, help, labels, buckets=None):
        if not self.enabled:
            return NOOP
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}")
            if family.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} label mismatch: "
                    f"{family.label_names} vs {tuple(labels)}")
            return family
        family = Family(name, kind, help=help, labels=labels,
                        buckets=buckets)
        self._families[name] = family
        return family

    def counter(self, name, help="", labels=()):
        return self._family(name, COUNTER, help, labels)

    def gauge(self, name, help="", labels=()):
        return self._family(name, GAUGE, help, labels)

    def histogram(self, name, help="", labels=(), buckets=None):
        return self._family(name, HISTOGRAM, help, labels, buckets=buckets)

    def get(self, name):
        """The family registered under ``name``, or None."""
        return self._families.get(name)

    def families(self):
        """Families sorted by name (the canonical iteration order)."""
        return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def snapshot(self):
        """A plain-dict, JSON-serializable, deterministic export.

        Families sort by name and children by label values; gauges with
        a registered function are evaluated here.
        """
        out = {"time": float(self.clock()), "families": []}
        for family in self.families():
            entry = {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": [],
            }
            for values, child in family.children():
                series = {"labels": dict(zip(family.label_names, values))}
                if family.kind == COUNTER:
                    series["value"] = child.value
                elif family.kind == GAUGE:
                    series["value"] = child.read()
                else:
                    series["count"] = child.count
                    series["sum"] = child.sum
                    series["buckets"] = [
                        {"le": bound, "count": cumulative}
                        for bound, cumulative in zip(
                            list(child.bounds) + ["+Inf"],
                            child.cumulative())
                    ]
                entry["series"].append(series)
            out["families"].append(entry)
        return out
