"""Telemetry snapshot/export CLI.

Runs a small seeded stress mix through the VirtualCluster pipeline and
prints the resulting telemetry snapshot::

    PYTHONPATH=src python -m repro.telemetry --seed 0 --format text
    PYTHONPATH=src python -m repro.telemetry --format json --check

``--check`` verifies the export contains every core metric family with
activity (the tier-1 telemetry smoke); exit status 1 lists what's
missing.  Output is deterministic per seed, so diffs between runs are
meaningful.
"""

import argparse
import sys

from .export import check_core_families, render_json, render_text


def run_snapshot(seed=0, pods=40, tenants=4, nodes=10):
    """Run a small stress mix and return the telemetry snapshot."""
    from repro.workloads.stress import run_vc_stress

    result = run_vc_stress(pods, tenants, dws_workers=4, uws_workers=8,
                           num_nodes=nodes, seed=seed, scan_interval=30.0,
                           keep_env=True)
    return result.env.sim.telemetry.snapshot()


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="run a small stress mix and export its telemetry")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pods", type=int, default=40,
                        help="total pods across tenants (default 40)")
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--nodes", type=int, default=10,
                        help="virtual-kubelet nodes (default 10)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--output", default=None,
                        help="write the export here instead of stdout")
    parser.add_argument("--check", action="store_true",
                        help="fail unless every core metric family is "
                             "present with activity")
    args = parser.parse_args(argv)
    if args.pods < 1:
        parser.error("--pods must be >= 1")
    if args.tenants < 1:
        parser.error("--tenants must be >= 1")
    if args.nodes < 1:
        parser.error("--nodes must be >= 1")

    snapshot = run_snapshot(seed=args.seed, pods=args.pods,
                            tenants=args.tenants, nodes=args.nodes)
    rendered = (render_json(snapshot) if args.format == "json"
                else render_text(snapshot))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")

    if args.check:
        problems = check_core_families(snapshot)
        if problems:
            for problem in problems:
                print(f"check: {problem}", file=sys.stderr)
            return 1
        print("check: all core metric families present", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
