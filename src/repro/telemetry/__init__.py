"""Unified telemetry: metrics registry + span tracer (DESIGN.md §11).

One :class:`Telemetry` hub per simulation bundles a
:class:`~repro.telemetry.registry.MetricsRegistry` and a
:class:`~repro.telemetry.spans.SpanTracer`, both driven by the
simulation clock so every export is deterministic per seed.  The
simulation kernel constructs the hub; components reach it through
:func:`telemetry_of`, which also lazily attaches a hub to bare/stub
simulations used in unit tests.

This package imports nothing from the rest of ``repro`` — the clock and
active-process accessors are injected — so the kernel can own a hub
without a layering cycle.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP,
)
from .spans import Span, SpanTracer

#: Metric families every instrumented run must expose; the tier-1
#: telemetry smoke (scripts/tier1.sh --telemetry-smoke) asserts these
#: appear in the JSON export with non-zero activity.
CORE_FAMILIES = (
    "apiserver_requests_total",
    "etcd_ops_total",
    "workqueue_adds_total",
    "informer_events_total",
    "syncer_items_total",
    "scheduler_binds_total",
    "kubelet_pods_started_total",
    "spans_total",
)


class Telemetry:
    """Per-simulation metrics registry + span tracer."""

    def __init__(self, sim, enabled=True):
        self.sim = sim
        self.enabled = enabled
        self.registry = MetricsRegistry(
            clock=lambda: sim.now, enabled=enabled)
        self.tracer = SpanTracer(
            clock=lambda: sim.now,
            active_context=lambda: getattr(sim, "active_process", None),
            registry=self.registry, enabled=enabled)

    # Shorthand factories so call sites read `telemetry.counter(...)`.

    def counter(self, name, help="", labels=()):
        return self.registry.counter(name, help, labels)

    def gauge(self, name, help="", labels=()):
        return self.registry.gauge(name, help, labels)

    def histogram(self, name, help="", labels=(), buckets=None):
        return self.registry.histogram(name, help, labels, buckets=buckets)

    def span(self, name, tenant="", **attrs):
        return self.tracer.span(name, tenant=tenant, **attrs)

    def snapshot(self):
        """Deterministic combined export: metric families + exact span
        aggregates (raw span objects carry run-dependent ids and are
        deliberately excluded)."""
        out = self.registry.snapshot()
        out["spans"] = self.tracer.aggregates()
        return out


def telemetry_of(sim):
    """The simulation's telemetry hub, attaching one if absent.

    The kernel's :class:`~repro.simkernel.loop.Simulation` constructs a
    hub in ``__init__``; this helper makes instrumentation safe against
    bare stand-in simulations in unit tests (anything with a ``now``
    attribute works).
    """
    hub = getattr(sim, "telemetry", None)
    if hub is None:
        hub = Telemetry(sim)
        try:
            sim.telemetry = hub
        except AttributeError:
            pass  # slotted stub; fall back to a fresh hub per call
    return hub


__all__ = [
    "CORE_FAMILIES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP",
    "Span",
    "SpanTracer",
    "Telemetry",
    "telemetry_of",
]
