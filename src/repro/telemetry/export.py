"""Render telemetry snapshots as text or JSON.

``render_text`` produces a Prometheus-exposition-flavoured dump plus a
span-aggregate table; ``render_json`` is a stable, sorted-key JSON
encoding — two same-seed runs produce byte-identical output in either
format.  ``check_core_families`` backs the tier-1 telemetry smoke.
"""

import json

from . import CORE_FAMILIES


def render_json(snapshot, indent=2):
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _labels_suffix(labels):
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"'
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def render_text(snapshot):
    lines = [f"# snapshot at sim time {snapshot['time']:.6f}s"]
    for family in snapshot["families"]:
        if family["help"]:
            lines.append(f"# HELP {family['name']} {family['help']}")
        lines.append(f"# TYPE {family['name']} {family['kind']}")
        for series in family["series"]:
            suffix = _labels_suffix(series["labels"])
            if family["kind"] == "histogram":
                for bucket in series["buckets"]:
                    le = bucket["le"]
                    le_txt = le if isinstance(le, str) else f"{le:g}"
                    bucket_labels = dict(series["labels"], le=le_txt)
                    lines.append(
                        f"{family['name']}_bucket"
                        f"{_labels_suffix(bucket_labels)}"
                        f" {bucket['count']}")
                lines.append(
                    f"{family['name']}_sum{suffix} {series['sum']:g}")
                lines.append(
                    f"{family['name']}_count{suffix} {series['count']}")
            else:
                lines.append(f"{family['name']}{suffix} {series['value']:g}")
    spans = snapshot.get("spans")
    if spans:
        lines.append("")
        lines.append("# spans (exact aggregates)")
        width = max(len(name) for name in spans)
        lines.append(f"{'name'.ljust(width)}  {'count':>8}  {'errors':>6}  "
                     f"{'mean (s)':>10}  {'total (s)':>10}")
        for name, agg in spans.items():
            lines.append(
                f"{name.ljust(width)}  {agg['count']:>8}  "
                f"{agg['errors']:>6}  {agg['mean_seconds']:>10.6f}  "
                f"{agg['total_seconds']:>10.3f}")
    return "\n".join(lines) + "\n"


def check_core_families(snapshot, families=CORE_FAMILIES):
    """Verify the snapshot contains every core family with activity.

    Returns a list of problems (empty means healthy) so callers can
    print them all rather than fail on the first.
    """
    present = {family["name"]: family for family in snapshot["families"]}
    problems = []
    for name in families:
        family = present.get(name)
        if family is None:
            problems.append(f"missing metric family: {name}")
            continue
        total = 0.0
        for series in family["series"]:
            total += series.get("value", series.get("count", 0))
        if total <= 0:
            problems.append(f"metric family has no activity: {name}")
    return problems
