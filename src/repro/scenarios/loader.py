"""YAML ⇄ :class:`~repro.scenarios.model.Scenario`.

Thin by design: the YAML layer is pure serialization — every semantic
check lives in the model so the typed Python builder and the YAML path
share one validator.  ``loads(dumps(s))`` reproduces ``s`` exactly (the
round-trip property test pins this).
"""

import os

import yaml

from .errors import ScenarioError
from .model import Scenario


def loads(text, where="scenario"):
    """Parse one scenario from YAML text."""
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ScenarioError(f"{where}: invalid YAML: {exc}") from exc
    if not isinstance(data, dict):
        raise ScenarioError(
            f"{where}: expected a YAML mapping at top level, got "
            f"{type(data).__name__}")
    return Scenario.from_dict(data, where=where)


def dumps(scenario):
    """Serialize a scenario to canonical YAML (keys in model order)."""
    return yaml.safe_dump(scenario.to_dict(), sort_keys=False,
                          default_flow_style=False)


def load_scenario(path):
    """Load one ``*.yaml`` scenario file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return loads(text, where=os.path.basename(path))


def save_scenario(scenario, path):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(scenario))


def corpus_paths(directory):
    """Sorted scenario file paths under ``directory``."""
    if not os.path.isdir(directory):
        raise ScenarioError(
            f"{directory!r} is not a directory (expected a scenario "
            f"corpus like scenarios/corpus)")
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith((".yaml", ".yml")))


def load_corpus(directory):
    """Load every scenario in a corpus directory; returns (path, Scenario)
    pairs sorted by file name."""
    pairs = []
    for path in corpus_paths(directory):
        pairs.append((path, load_scenario(path)))
    if not pairs:
        raise ScenarioError(f"no *.yaml scenarios found in {directory!r}")
    return pairs
