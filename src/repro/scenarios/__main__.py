"""CLI: ``python -m repro.scenarios {list,run,record,verify}``.

``list``    show the corpus (tier, checks, golden status);
``run``     run one scenario file and print its result;
``record``  run and write the golden block back into the file(s);
``verify``  replay every scenario twice against its golden digest.

``record`` rewrites only the ``golden:`` block, preserving the rest of
the hand-authored YAML (comments included).
"""

import argparse
import json
import os
import re
import sys

from .errors import GoldenMismatch, ScenarioError
from .loader import corpus_paths, load_scenario
from .runner import record_scenario, run_scenario, verify_scenario

DEFAULT_CORPUS = os.path.join("scenarios", "corpus")


def _scenario_files(path):
    if os.path.isdir(path):
        return corpus_paths(path)
    return [path]


def _golden_block(golden):
    return ("golden:\n"
            f"  digest: {golden.digest}\n"
            f"  store_events: {golden.store_events}\n"
            f"  sim_time: {golden.sim_time}\n")


def rewrite_golden(path, golden):
    """Replace (or append) the top-level ``golden:`` block in a YAML file.

    Textual, not a YAML re-dump, so authored comments survive.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    block = _golden_block(golden)
    # The golden block runs from the `golden:` line to the next
    # top-level (column-0) key or EOF.
    pattern = re.compile(r"^golden:\n(?:[ \t]+\S[^\n]*\n|\n)*", re.M)
    if pattern.search(text):
        text = pattern.sub(block, text, count=1)
    else:
        if not text.endswith("\n"):
            text += "\n"
        text += "\n" + block
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def cmd_list(args):
    rows = []
    for path in _scenario_files(args.corpus):
        scenario = load_scenario(path)
        flags = []
        if scenario.tier1:
            flags.append("tier1")
        if scenario.race_check:
            flags.append("race")
        if scenario.chaos:
            flags.append(f"chaos×{len(scenario.chaos)}")
        rows.append((
            scenario.name, f"{len(scenario.tenants)}t",
            f"{scenario.workload_count()}w",
            f"{scenario.topology.total_nodes()}n",
            f"{scenario.horizon:g}s",
            "recorded" if scenario.golden else "UNRECORDED",
            ",".join(flags) or "-"))
    width = max(len(row[0]) for row in rows) if rows else 8
    print(f"{'scenario':<{width}}  ten  wl  nodes  horizon  golden      "
          f"flags")
    for name, tenants, workloads, nodes, horizon, golden, flags in rows:
        print(f"{name:<{width}}  {tenants:>3}  {workloads:>2}  {nodes:>5}  "
              f"{horizon:>7}  {golden:<10}  {flags}")
    return 0


def _print_result(result, as_json=False):
    if as_json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return
    verdict = "ok" if result.ok else "FAIL"
    print(f"{result.scenario.name}: {verdict}  "
          f"digest={result.digest[:16]}…  events={result.store_events}  "
          f"pods={result.pods_created}  t={result.sim_time:.2f}s  "
          f"converged={result.converged}")
    for failure in result.failures:
        print(f"  failure: {failure}")


def cmd_run(args):
    status = 0
    for path in _scenario_files(args.path):
        scenario = load_scenario(path)
        if args.seed is not None:
            scenario.seed = args.seed
        result = run_scenario(scenario,
                              race_check=True if args.race else None)
        _print_result(result, as_json=args.json)
        if not result.ok:
            status = 1
    return status


def cmd_record(args):
    for path in _scenario_files(args.path):
        scenario = load_scenario(path)
        result = record_scenario(scenario)
        rewrite_golden(path, scenario.golden)
        print(f"{scenario.name}: recorded {result.digest[:16]}…  "
              f"events={result.store_events}  t={result.sim_time:.2f}s  "
              f"pods={result.pods_created}")
    return 0


def cmd_verify(args):
    status = 0
    for path in _scenario_files(args.corpus):
        scenario = load_scenario(path)
        try:
            results = verify_scenario(scenario, runs=args.runs)
        except (GoldenMismatch, ScenarioError) as exc:
            print(f"{scenario.name}: FAIL — {exc}")
            status = 1
            continue
        extra = " race=clean" if scenario.race_check else ""
        print(f"{scenario.name}: ok — {args.runs}× replay matched "
              f"{scenario.golden.digest[:16]}… "
              f"({results[0].store_events} events){extra}")
    return status


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Declarative scenario corpus: list, run, record, "
                    "verify (DESIGN.md §14)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show the scenario corpus")
    p_list.add_argument("corpus", nargs="?", default=DEFAULT_CORPUS)
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run one scenario (no golden gate)")
    p_run.add_argument("path")
    p_run.add_argument("--seed", type=int, default=None,
                       help="override the scenario seed")
    p_run.add_argument("--race", action="store_true",
                       help="attach the vector-clock race detector")
    p_run.add_argument("--json", action="store_true")
    p_run.set_defaults(func=cmd_run)

    p_record = sub.add_parser(
        "record", help="run and write the golden block into the file(s)")
    p_record.add_argument("path")
    p_record.set_defaults(func=cmd_record)

    p_verify = sub.add_parser(
        "verify", help="replay each scenario against its golden digest")
    p_verify.add_argument("corpus", nargs="?", default=DEFAULT_CORPUS)
    p_verify.add_argument("--runs", type=int, default=2,
                          help="replays per scenario (default 2)")
    p_verify.set_defaults(func=cmd_verify)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
