"""The typed scenario model: what a scenario *is*, independent of YAML.

A :class:`Scenario` composes four orthogonal axes plus bookkeeping:

- **tenants** — names, fair-queue weights, and per-tenant workload
  templates (a named traffic :mod:`shape <repro.scenarios.shapes>` in a
  namespace);
- **topology** — node pools of virtual-kubelet nodes, optionally behind
  an edge uplink (:class:`~repro.network.NetworkLink` latency/jitter/
  loss) and optionally *elastic* (nodes stage their joins over the run,
  the JIRIAF virtual-kubelet-pool pattern);
- **chaos** — an overlay of `repro.chaos` faults on declarative
  schedules;
- **expectations** — convergence plus telemetry floors the run must
  meet, and the recorded **golden** digest the conformance gate replays
  against.

Everything validates eagerly with YAML-path-prefixed messages, and
``from_dict(to_dict(s)) == s`` holds exactly (the round-trip property
test pins it).  Builders: the classes double as the typed Python API —
``Scenario(name=..., tenants=[TenantSpec(...)], ...)`` — so programmatic
scenario construction and YAML loading share one validation path.
"""

import re

from .errors import ScenarioError
from .shapes import SequentialShape, shape_from_dict

_NAME_RE = re.compile(r"^[a-z0-9]([a-z0-9-]*[a-z0-9])?$")

#: Chaos faults a scenario may schedule, with their optional parameters
#: and legal targets ("tenant" means any declared tenant name).
FAULT_CATALOG = {
    "apiserver-crash": {"params": (), "targets": ("tenant", "super")},
    "request-fault": {"params": ("error_rate", "extra_latency", "verbs"),
                      "targets": ("tenant", "super")},
    "watch-drop": {"params": ("fraction",), "targets": ("tenant", "super")},
    "partition": {"params": (), "targets": ("tenant",)},
    "worker-crash": {"params": ("count",), "targets": ("syncer",)},
    "compaction": {"params": ("keep",), "targets": ("tenant", "super")},
    "tenant-storm": {"params": ("qps", "concurrency", "tier"),
                     "targets": ("tenant",)},
}

#: Admission tiers a tenant may declare (DESIGN.md §15).  ``system`` is
#: reserved for infrastructure credentials and is not assignable here.
TENANT_TIERS = ("platinum", "standard", "free")

SCHEDULE_TYPES = ("oneshot", "periodic", "random")


def _check_name(value, where):
    if not isinstance(value, str) or not _NAME_RE.match(value):
        raise ScenarioError(
            f"{where}: {value!r} is not a valid name (lowercase "
            f"alphanumerics and '-', starting and ending alphanumeric)")
    return value


def _check_keys(data, where, allowed):
    if not isinstance(data, dict):
        raise ScenarioError(
            f"{where}: expected a mapping, got {type(data).__name__}")
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ScenarioError(
            f"{where}: unknown key(s) {', '.join(map(repr, unknown))} "
            f"(valid keys: {', '.join(sorted(allowed))})")


def _number(data, key, where, default=None, minimum=None, required=False):
    if key not in data or data[key] is None:
        if required:
            raise ScenarioError(f"{where}: missing required key {key!r}")
        return default
    value = data[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(
            f"{where}.{key}: expected a number, got {value!r}")
    if minimum is not None and value < minimum:
        raise ScenarioError(
            f"{where}.{key}: must be >= {minimum}, got {value!r}")
    return value


class _Spec:
    """Shared dataclass-ish plumbing: equality and repr over ``fields``."""

    fields = ()

    def __eq__(self, other):
        return (type(other) is type(self)
                and all(getattr(self, f) == getattr(other, f)
                        for f in self.fields))

    def __repr__(self):
        params = ", ".join(f"{f}={getattr(self, f)!r}" for f in self.fields)
        return f"{type(self).__name__}({params})"


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------


class LinkSpec(_Spec):
    """An edge-site uplink profile (maps onto NetworkLink)."""

    fields = ("latency", "jitter", "loss")

    def __init__(self, latency=0.0, jitter=0.0, loss=0.0):
        self.latency = float(latency)
        self.jitter = float(jitter)
        self.loss = float(loss)

    def validate(self, where):
        if self.latency < 0 or self.jitter < 0:
            raise ScenarioError(
                f"{where}: latency/jitter must be >= 0 seconds")
        if not 0.0 <= self.loss < 0.2:
            raise ScenarioError(
                f"{where}: loss must be in [0, 0.2), got {self.loss!r} — "
                f"beyond ~20% the client's retry budget (4 retries) can "
                f"no longer mask drops and components crash rather than "
                f"degrade")

    def to_dict(self):
        return {"latency": self.latency, "jitter": self.jitter,
                "loss": self.loss}

    @classmethod
    def from_dict(cls, data, where):
        _check_keys(data, where, cls.fields)
        spec = cls(latency=_number(data, "latency", where, 0.0),
                   jitter=_number(data, "jitter", where, 0.0),
                   loss=_number(data, "loss", where, 0.0))
        spec.validate(where)
        return spec


class ElasticSpec(_Spec):
    """Staged joins: ``initial`` nodes at bootstrap, the rest every
    ``interval`` seconds (elastic virtual-kubelet pools, JIRIAF-style)."""

    fields = ("initial", "interval")

    def __init__(self, initial=1, interval=5.0):
        self.initial = int(initial)
        self.interval = float(interval)

    def validate(self, where, pool_nodes):
        if not 0 <= self.initial <= pool_nodes:
            raise ScenarioError(
                f"{where}.initial: must be in [0, nodes={pool_nodes}], "
                f"got {self.initial!r}")
        if self.interval <= 0:
            raise ScenarioError(
                f"{where}.interval: must be > 0 seconds, got "
                f"{self.interval!r}")

    def to_dict(self):
        return {"initial": self.initial, "interval": self.interval}

    @classmethod
    def from_dict(cls, data, where):
        _check_keys(data, where, cls.fields)
        return cls(initial=_number(data, "initial", where, 1, minimum=0),
                   interval=_number(data, "interval", where, 5.0))


class PoolSpec(_Spec):
    """One pool of virtual-kubelet nodes, optionally edge / elastic."""

    fields = ("name", "nodes", "link", "elastic")

    def __init__(self, name, nodes, link=None, elastic=None):
        self.name = name
        self.nodes = int(nodes)
        self.link = link
        self.elastic = elastic

    def validate(self, where):
        _check_name(self.name, f"{where}.name")
        if self.nodes < 1:
            raise ScenarioError(
                f"{where}.nodes: must be >= 1, got {self.nodes!r}")
        if self.link is not None:
            self.link.validate(f"{where}.link")
        if self.elastic is not None:
            self.elastic.validate(f"{where}.elastic", self.nodes)

    def to_dict(self):
        out = {"name": self.name, "nodes": self.nodes}
        if self.link is not None:
            out["link"] = self.link.to_dict()
        if self.elastic is not None:
            out["elastic"] = self.elastic.to_dict()
        return out

    @classmethod
    def from_dict(cls, data, where):
        _check_keys(data, where, cls.fields)
        if "name" not in data:
            raise ScenarioError(f"{where}: pool needs a 'name'")
        link = (LinkSpec.from_dict(data["link"], f"{where}.link")
                if data.get("link") is not None else None)
        elastic = (ElasticSpec.from_dict(data["elastic"], f"{where}.elastic")
                   if data.get("elastic") is not None else None)
        return cls(name=data["name"],
                   nodes=_number(data, "nodes", where, required=True),
                   link=link, elastic=elastic)


class TopologySpec(_Spec):
    fields = ("pools",)

    def __init__(self, pools=()):
        self.pools = list(pools)

    def validate(self, where):
        if not self.pools:
            raise ScenarioError(
                f"{where}.pools: at least one node pool is required "
                f"(pods need somewhere to run)")
        seen = {}
        for index, pool in enumerate(self.pools):
            pool.validate(f"{where}.pools[{index}]")
            if pool.name in seen:
                raise ScenarioError(
                    f"{where}.pools[{index}]: duplicate pool name "
                    f"{pool.name!r} (already declared at pools"
                    f"[{seen[pool.name]}])")
            seen[pool.name] = index

    def total_nodes(self):
        return sum(pool.nodes for pool in self.pools)

    def to_dict(self):
        return {"pools": [pool.to_dict() for pool in self.pools]}

    @classmethod
    def from_dict(cls, data, where):
        _check_keys(data, where, cls.fields)
        pools = data.get("pools") or []
        if not isinstance(pools, list):
            raise ScenarioError(f"{where}.pools: expected a list")
        return cls(pools=[PoolSpec.from_dict(p, f"{where}.pools[{i}]")
                          for i, p in enumerate(pools)])


# ----------------------------------------------------------------------
# Tenants & workloads
# ----------------------------------------------------------------------


class WorkloadSpec(_Spec):
    """One named workload template inside a tenant."""

    fields = ("name", "shape", "namespace", "start", "jitter")

    def __init__(self, name, shape, namespace="default", start=0.0,
                 jitter=0.0):
        self.name = name
        self.shape = shape
        self.namespace = namespace
        self.start = float(start)
        self.jitter = float(jitter)

    def validate(self, where, horizon):
        _check_name(self.name, f"{where}.name")
        _check_name(self.namespace, f"{where}.namespace")
        if self.start < 0 or self.jitter < 0:
            raise ScenarioError(
                f"{where}: start/jitter must be >= 0 seconds")
        self.shape.validate(f"{where}.shape")
        end = self.start + self.shape.window()
        if end > horizon:
            raise ScenarioError(
                f"{where}: workload runs until t={end:g}s but the "
                f"scenario horizon is {horizon:g}s — extend 'horizon' "
                f"or shrink the shape")

    def to_dict(self):
        out = {"name": self.name, "shape": self.shape.to_dict()}
        if self.namespace != "default":
            out["namespace"] = self.namespace
        if self.start:
            out["start"] = self.start
        if self.jitter:
            out["jitter"] = self.jitter
        return out

    @classmethod
    def from_dict(cls, data, where):
        _check_keys(data, where, cls.fields)
        if "name" not in data:
            raise ScenarioError(f"{where}: workload needs a 'name'")
        if "shape" not in data:
            raise ScenarioError(
                f"{where}: workload needs a 'shape' mapping "
                f"(e.g. {{type: constant, rate: 2, duration: 20}})")
        return cls(name=data["name"],
                   shape=shape_from_dict(data["shape"], f"{where}.shape"),
                   namespace=data.get("namespace", "default"),
                   start=_number(data, "start", where, 0.0, minimum=0),
                   jitter=_number(data, "jitter", where, 0.0, minimum=0))


class TenantSpec(_Spec):
    fields = ("name", "weight", "tier", "workloads")

    def __init__(self, name, weight=1, tier=None, workloads=()):
        self.name = name
        self.weight = int(weight)
        self.tier = tier
        self.workloads = list(workloads)

    def validate(self, where, horizon):
        _check_name(self.name, f"{where}.name")
        if self.weight < 1:
            raise ScenarioError(
                f"{where}.weight: must be >= 1, got {self.weight!r}")
        if self.tier is not None and self.tier not in TENANT_TIERS:
            raise ScenarioError(
                f"{where}.tier: unknown tier {self.tier!r} "
                f"(valid: {', '.join(TENANT_TIERS)})")
        seen = {}
        for index, workload in enumerate(self.workloads):
            workload.validate(f"{where}.workloads[{index}]", horizon)
            if workload.name in seen:
                raise ScenarioError(
                    f"{where}.workloads[{index}]: duplicate workload "
                    f"name {workload.name!r} (already declared at "
                    f"workloads[{seen[workload.name]}])")
            seen[workload.name] = index

    def to_dict(self):
        out = {"name": self.name}
        if self.weight != 1:
            out["weight"] = self.weight
        if self.tier is not None:
            out["tier"] = self.tier
        if self.workloads:
            out["workloads"] = [w.to_dict() for w in self.workloads]
        return out

    @classmethod
    def from_dict(cls, data, where):
        _check_keys(data, where, cls.fields)
        if "name" not in data:
            raise ScenarioError(f"{where}: tenant needs a 'name'")
        workloads = data.get("workloads") or []
        if not isinstance(workloads, list):
            raise ScenarioError(f"{where}.workloads: expected a list")
        return cls(
            name=data["name"],
            weight=_number(data, "weight", where, 1),
            tier=data.get("tier"),
            workloads=[WorkloadSpec.from_dict(w, f"{where}.workloads[{i}]")
                       for i, w in enumerate(workloads)])


# ----------------------------------------------------------------------
# Chaos overlay
# ----------------------------------------------------------------------


class ScheduleSpec(_Spec):
    """When a chaos fault fires: oneshot, periodic, or random windows."""

    fields = ("type", "at", "duration", "period", "count", "offset",
              "mean_gap", "duration_range")

    def __init__(self, type, at=None, duration=0.0, period=None, count=None,
                 offset=0.0, mean_gap=None, duration_range=None):
        self.type = type
        self.at = at
        self.duration = float(duration)
        self.period = period
        self.count = count
        self.offset = float(offset)
        self.mean_gap = mean_gap
        self.duration_range = (list(duration_range)
                               if duration_range is not None else None)

    def validate(self, where):
        if self.type not in SCHEDULE_TYPES:
            raise ScenarioError(
                f"{where}.type: unknown schedule type {self.type!r} "
                f"(valid: {', '.join(SCHEDULE_TYPES)})")
        if self.duration < 0:
            raise ScenarioError(
                f"{where}.duration: must be >= 0, got {self.duration!r}")
        if self.type == "oneshot":
            if self.at is None or self.at < 0:
                raise ScenarioError(
                    f"{where}: oneshot needs 'at' >= 0 seconds, got "
                    f"{self.at!r}")
        elif self.type == "periodic":
            if self.period is None or self.period <= 0:
                raise ScenarioError(
                    f"{where}: periodic needs 'period' > 0 seconds, got "
                    f"{self.period!r}")
            if self.count is None or self.count < 1:
                raise ScenarioError(
                    f"{where}: periodic needs 'count' >= 1 "
                    f"(unbounded chaos cannot be digest-gated), got "
                    f"{self.count!r}")
        elif self.type == "random":
            if self.mean_gap is None or self.mean_gap <= 0:
                raise ScenarioError(
                    f"{where}: random needs 'mean_gap' > 0 seconds, got "
                    f"{self.mean_gap!r}")
            if self.count is None or self.count < 1:
                raise ScenarioError(
                    f"{where}: random needs 'count' >= 1, got "
                    f"{self.count!r}")

    def windows(self):
        """Statically known ``[start, end)`` windows (for overlap checks).

        Random schedules return ``None`` — their windows depend on the
        engine RNG, so overlap cannot be checked statically.
        """
        if self.type == "oneshot":
            return [(self.at, self.at + self.duration)]
        if self.type == "periodic":
            # Mirrors repro.chaos.schedule.Periodic: first window opens
            # after offset + period, the k-th after k periods.
            out = []
            for k in range(self.count):
                start = self.offset + (k + 1) * self.period + \
                    k * self.duration
                out.append((start, start + self.duration))
            return out
        return None

    def to_dict(self):
        out = {"type": self.type}
        if self.at is not None:
            out["at"] = self.at
        if self.duration:
            out["duration"] = self.duration
        if self.period is not None:
            out["period"] = self.period
        if self.count is not None:
            out["count"] = self.count
        if self.offset:
            out["offset"] = self.offset
        if self.mean_gap is not None:
            out["mean_gap"] = self.mean_gap
        if self.duration_range is not None:
            out["duration_range"] = list(self.duration_range)
        return out

    @classmethod
    def from_dict(cls, data, where):
        _check_keys(data, where, cls.fields)
        if "type" not in data:
            raise ScenarioError(
                f"{where}: schedule needs a 'type' "
                f"(one of: {', '.join(SCHEDULE_TYPES)})")
        spec = cls(type=data["type"],
                   at=_number(data, "at", where),
                   duration=_number(data, "duration", where, 0.0),
                   period=_number(data, "period", where),
                   count=_number(data, "count", where),
                   offset=_number(data, "offset", where, 0.0),
                   mean_gap=_number(data, "mean_gap", where),
                   duration_range=data.get("duration_range"))
        spec.validate(where)
        return spec


class ChaosSpec(_Spec):
    """One fault on one schedule against one target."""

    fields = ("fault", "target", "schedule", "params")

    def __init__(self, fault, target, schedule, params=None):
        self.fault = fault
        self.target = target
        self.schedule = schedule
        self.params = dict(params or {})

    def validate(self, where, tenant_names):
        entry = FAULT_CATALOG.get(self.fault)
        if entry is None:
            raise ScenarioError(
                f"{where}.fault: unknown fault {self.fault!r} "
                f"(valid faults: {', '.join(sorted(FAULT_CATALOG))})")
        targets = entry["targets"]
        if self.target in ("super", "syncer"):
            if self.target not in targets:
                raise ScenarioError(
                    f"{where}.target: fault {self.fault!r} cannot target "
                    f"{self.target!r} (allowed: "
                    f"{', '.join(targets)})")
        elif "tenant" in targets:
            if self.target not in tenant_names:
                raise ScenarioError(
                    f"{where}.target: {self.target!r} is not a declared "
                    f"tenant (declared: {', '.join(sorted(tenant_names))}"
                    f"{', or super' if 'super' in targets else ''})")
        else:
            raise ScenarioError(
                f"{where}.target: fault {self.fault!r} targets "
                f"{'/'.join(targets)}, got {self.target!r}")
        unknown = sorted(set(self.params) - set(entry["params"]))
        if unknown:
            raise ScenarioError(
                f"{where}.params: unknown parameter(s) "
                f"{', '.join(map(repr, unknown))} for fault "
                f"{self.fault!r} (valid: "
                f"{', '.join(entry['params']) or 'none'})")
        self.schedule.validate(f"{where}.schedule")

    def to_dict(self):
        out = {"fault": self.fault, "target": self.target,
               "schedule": self.schedule.to_dict()}
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data, where):
        _check_keys(data, where, cls.fields)
        for key in ("fault", "target", "schedule"):
            if key not in data:
                raise ScenarioError(f"{where}: chaos entry needs {key!r}")
        return cls(fault=data["fault"], target=data["target"],
                   schedule=ScheduleSpec.from_dict(data["schedule"],
                                                   f"{where}.schedule"),
                   params=data.get("params") or {})


def _check_chaos_overlaps(entries, where):
    """Reject statically overlapping windows of the same fault+target.

    Two windows of the *same* fault against the *same* target that
    overlap in time would double-inject (the second ``inject`` fires
    while the first window is still open) and the paired ``restore``
    calls then race — a classic scenario-authoring mistake, so it is a
    validation error, not a runtime surprise.
    """
    by_key = {}
    for index, entry in enumerate(entries):
        windows = entry.schedule.windows()
        if windows is None:
            continue
        key = (entry.fault, entry.target)
        for window in windows:
            by_key.setdefault(key, []).append((window, index))
    for (fault, target), windows in sorted(by_key.items()):
        ordered = sorted(windows)
        for ((s1, e1), i1), ((s2, e2), i2) in zip(ordered, ordered[1:]):
            # Half-open [s, e): instantaneous windows never overlap.
            if s2 < e1 and s1 < e2 and e1 > s1:
                raise ScenarioError(
                    f"{where}[{i1}] and {where}[{i2}]: overlapping "
                    f"windows for fault {fault!r} on target {target!r} "
                    f"([{s1:g}, {e1:g}) vs [{s2:g}, {e2:g})) — stagger "
                    f"the schedules or merge them into one entry")


# ----------------------------------------------------------------------
# Expectations & golden
# ----------------------------------------------------------------------


class TelemetryExpect(_Spec):
    """A floor/ceiling on one metric family's total at end of run."""

    fields = ("metric", "min", "max")

    def __init__(self, metric, min=None, max=None):
        self.metric = metric
        self.min = min
        self.max = max

    def validate(self, where):
        if not self.metric or not isinstance(self.metric, str):
            raise ScenarioError(f"{where}: 'metric' must be a family name")
        if self.min is None and self.max is None:
            raise ScenarioError(
                f"{where}: expectation on {self.metric!r} needs 'min' "
                f"and/or 'max'")

    def to_dict(self):
        out = {"metric": self.metric}
        if self.min is not None:
            out["min"] = self.min
        if self.max is not None:
            out["max"] = self.max
        return out

    @classmethod
    def from_dict(cls, data, where):
        _check_keys(data, where, cls.fields)
        spec = cls(metric=data.get("metric"),
                   min=_number(data, "min", where),
                   max=_number(data, "max", where))
        spec.validate(where)
        return spec


class ExpectSpec(_Spec):
    fields = ("converged", "min_pods_created", "telemetry")

    def __init__(self, converged=True, min_pods_created=0, telemetry=()):
        self.converged = bool(converged)
        self.min_pods_created = int(min_pods_created)
        self.telemetry = list(telemetry)

    def validate(self, where):
        if self.min_pods_created < 0:
            raise ScenarioError(
                f"{where}.min_pods_created: must be >= 0")
        for index, expect in enumerate(self.telemetry):
            expect.validate(f"{where}.telemetry[{index}]")

    def to_dict(self):
        out = {"converged": self.converged}
        if self.min_pods_created:
            out["min_pods_created"] = self.min_pods_created
        if self.telemetry:
            out["telemetry"] = [t.to_dict() for t in self.telemetry]
        return out

    @classmethod
    def from_dict(cls, data, where):
        _check_keys(data, where, cls.fields)
        telemetry = data.get("telemetry") or []
        if not isinstance(telemetry, list):
            raise ScenarioError(f"{where}.telemetry: expected a list")
        return cls(
            converged=data.get("converged", True),
            min_pods_created=_number(data, "min_pods_created", where, 0,
                                     minimum=0),
            telemetry=[TelemetryExpect.from_dict(t,
                                                 f"{where}.telemetry[{i}]")
                       for i, t in enumerate(telemetry)])


class GoldenSpec(_Spec):
    """The recorded reference: converged-state store-event digest."""

    fields = ("digest", "store_events", "sim_time")

    def __init__(self, digest, store_events, sim_time=0.0):
        self.digest = digest
        self.store_events = int(store_events)
        self.sim_time = float(sim_time)

    def validate(self, where):
        if (not isinstance(self.digest, str)
                or not re.fullmatch(r"[0-9a-f]{64}", self.digest)):
            raise ScenarioError(
                f"{where}.digest: expected a sha256 hex digest, got "
                f"{self.digest!r} (run 'python -m repro.scenarios "
                f"record' to produce one)")
        if self.store_events < 1:
            raise ScenarioError(
                f"{where}.store_events: must be >= 1")

    def to_dict(self):
        return {"digest": self.digest, "store_events": self.store_events,
                "sim_time": self.sim_time}

    @classmethod
    def from_dict(cls, data, where):
        _check_keys(data, where, cls.fields)
        for key in ("digest", "store_events"):
            if key not in data:
                raise ScenarioError(f"{where}: golden needs {key!r}")
        spec = cls(digest=data["digest"],
                   store_events=_number(data, "store_events", where,
                                        required=True),
                   sim_time=_number(data, "sim_time", where, 0.0))
        spec.validate(where)
        return spec


# ----------------------------------------------------------------------
# Control-plane knobs
# ----------------------------------------------------------------------


class ControlSpec(_Spec):
    """How the env under test is configured (syncer sizing etc.).

    ``apf`` turns on APF admission control on the super apiserver
    (tenant tiers, shuffle-shard queues, 429 + Retry-After shedding);
    ``scale_to_zero`` turns on the idle swapper, with
    ``idle_threshold`` overriding how long a tenant control plane must
    see no user traffic before it is paged out (DESIGN.md §15).  Both
    default off, so existing scenarios run the exact pre-§15 stack and
    keep their golden digests.
    """

    fields = ("scan_interval", "dws_workers", "uws_workers",
              "fair_queuing", "optimized", "apf", "scale_to_zero",
              "idle_threshold")

    def __init__(self, scan_interval=5.0, dws_workers=4, uws_workers=4,
                 fair_queuing=True, optimized=True, apf=False,
                 scale_to_zero=False, idle_threshold=None):
        self.scan_interval = float(scan_interval)
        self.dws_workers = int(dws_workers)
        self.uws_workers = int(uws_workers)
        self.fair_queuing = bool(fair_queuing)
        self.optimized = bool(optimized)
        self.apf = bool(apf)
        self.scale_to_zero = bool(scale_to_zero)
        self.idle_threshold = (float(idle_threshold)
                               if idle_threshold is not None else None)

    def validate(self, where):
        if self.scan_interval <= 0:
            raise ScenarioError(
                f"{where}.scan_interval: must be > 0 seconds")
        if self.dws_workers < 1 or self.uws_workers < 1:
            raise ScenarioError(
                f"{where}: dws_workers/uws_workers must be >= 1")
        if self.idle_threshold is not None:
            if self.idle_threshold <= 0:
                raise ScenarioError(
                    f"{where}.idle_threshold: must be > 0 seconds")
            if not self.scale_to_zero:
                raise ScenarioError(
                    f"{where}.idle_threshold: only meaningful with "
                    f"scale_to_zero: true")

    def to_dict(self):
        out = {"scan_interval": self.scan_interval,
               "dws_workers": self.dws_workers,
               "uws_workers": self.uws_workers,
               "fair_queuing": self.fair_queuing,
               "optimized": self.optimized}
        if self.apf:
            out["apf"] = True
        if self.scale_to_zero:
            out["scale_to_zero"] = True
        if self.idle_threshold is not None:
            out["idle_threshold"] = self.idle_threshold
        return out

    @classmethod
    def from_dict(cls, data, where):
        _check_keys(data, where, cls.fields)
        spec = cls(
            scan_interval=_number(data, "scan_interval", where, 5.0),
            dws_workers=_number(data, "dws_workers", where, 4),
            uws_workers=_number(data, "uws_workers", where, 4),
            fair_queuing=data.get("fair_queuing", True),
            optimized=data.get("optimized", True),
            apf=data.get("apf", False),
            scale_to_zero=data.get("scale_to_zero", False),
            idle_threshold=_number(data, "idle_threshold", where))
        spec.validate(where)
        return spec


# ----------------------------------------------------------------------
# The scenario
# ----------------------------------------------------------------------


class Scenario(_Spec):
    fields = ("name", "description", "seed", "horizon",
              "convergence_timeout", "tier1", "race_check", "control",
              "topology", "tenants", "chaos", "expect", "golden")

    def __init__(self, name, description="", seed=0, horizon=40.0,
                 convergence_timeout=180.0, tier1=False, race_check=False,
                 control=None, topology=None, tenants=(), chaos=(),
                 expect=None, golden=None):
        self.name = name
        self.description = description
        self.seed = int(seed)
        self.horizon = float(horizon)
        self.convergence_timeout = float(convergence_timeout)
        self.tier1 = bool(tier1)
        self.race_check = bool(race_check)
        self.control = control or ControlSpec()
        self.topology = topology or TopologySpec()
        self.tenants = list(tenants)
        self.chaos = list(chaos)
        self.expect = expect or ExpectSpec()
        self.golden = golden

    def validate(self):
        _check_name(self.name, "name")
        if self.horizon <= 0:
            raise ScenarioError(
                f"horizon: must be > 0 seconds, got {self.horizon!r}")
        if self.convergence_timeout <= 0:
            raise ScenarioError("convergence_timeout: must be > 0 seconds")
        self.control.validate("control")
        self.topology.validate("topology")
        if not self.tenants:
            raise ScenarioError(
                "tenants: at least one tenant is required")
        seen = {}
        for index, tenant in enumerate(self.tenants):
            tenant.validate(f"tenants[{index}]", self.horizon)
            if tenant.name in seen:
                raise ScenarioError(
                    f"tenants[{index}]: duplicate tenant name "
                    f"{tenant.name!r} (already declared at tenants"
                    f"[{seen[tenant.name]}]) — tenant names key control "
                    f"planes and fair-queue weights, so they must be "
                    f"unique")
            seen[tenant.name] = index
        tenant_names = set(seen)
        for index, entry in enumerate(self.chaos):
            entry.validate(f"chaos[{index}]", tenant_names)
        _check_chaos_overlaps(self.chaos, "chaos")
        self.expect.validate("expect")
        if self.golden is not None:
            self.golden.validate("golden")
        return self

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def workload_count(self):
        return sum(len(t.workloads) for t in self.tenants)

    def has_open_loop_load(self):
        return any(not isinstance(w.shape, SequentialShape)
                   for t in self.tenants for w in t.workloads)

    def to_dict(self):
        out = {"name": self.name}
        if self.description:
            out["description"] = self.description
        out["seed"] = self.seed
        out["horizon"] = self.horizon
        if self.convergence_timeout != 180.0:
            out["convergence_timeout"] = self.convergence_timeout
        if self.tier1:
            out["tier1"] = True
        if self.race_check:
            out["race_check"] = True
        out["control"] = self.control.to_dict()
        out["topology"] = self.topology.to_dict()
        out["tenants"] = [t.to_dict() for t in self.tenants]
        if self.chaos:
            out["chaos"] = [c.to_dict() for c in self.chaos]
        out["expect"] = self.expect.to_dict()
        if self.golden is not None:
            out["golden"] = self.golden.to_dict()
        return out

    @classmethod
    def from_dict(cls, data, where="scenario"):
        _check_keys(data, where, cls.fields)
        if "name" not in data:
            raise ScenarioError(f"{where}: scenario needs a 'name'")
        tenants = data.get("tenants") or []
        chaos = data.get("chaos") or []
        if not isinstance(tenants, list):
            raise ScenarioError("tenants: expected a list")
        if not isinstance(chaos, list):
            raise ScenarioError("chaos: expected a list")
        scenario = cls(
            name=data["name"],
            description=data.get("description", ""),
            seed=_number(data, "seed", where, 0),
            horizon=_number(data, "horizon", where, 40.0),
            convergence_timeout=_number(data, "convergence_timeout", where,
                                        180.0),
            tier1=data.get("tier1", False),
            race_check=data.get("race_check", False),
            control=(ControlSpec.from_dict(data["control"], "control")
                     if data.get("control") is not None else None),
            topology=(TopologySpec.from_dict(data["topology"], "topology")
                      if data.get("topology") is not None else None),
            tenants=[TenantSpec.from_dict(t, f"tenants[{i}]")
                     for i, t in enumerate(tenants)],
            chaos=[ChaosSpec.from_dict(c, f"chaos[{i}]")
                   for i, c in enumerate(chaos)],
            expect=(ExpectSpec.from_dict(data["expect"], "expect")
                    if data.get("expect") is not None else None),
            golden=(GoldenSpec.from_dict(data["golden"], "golden")
                    if data.get("golden") is not None else None))
        return scenario.validate()
