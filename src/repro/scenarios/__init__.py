"""Declarative scenarios: traffic × tenants × topology × chaos
(DESIGN.md §14).

A scenario is one YAML file (or typed builder call) composing:

- **traffic shapes** — constant, diurnal, flash-crowd, burst,
  sequential, rolling-upgrade (:mod:`repro.scenarios.shapes`);
- **tenant mixes** — counts, fair-queue weights, namespaces, per-tenant
  workload templates;
- **topologies** — super-cluster node pools, edge sites behind
  :class:`~repro.network.NetworkLink` uplinks, elastic virtual-kubelet
  pools with staged joins;
- **chaos overlays** — `repro.chaos` faults on declarative schedules;
- **expectations + golden** — convergence, telemetry floors, and the
  recorded converged-state sha256 digest the conformance suite replays
  against.

Everything compiles onto the seeded simkernel, so a scenario is a pure
function from its YAML to a digest: ``python -m repro.scenarios verify``
replays the corpus and fails on any drift.
"""

from .errors import GoldenMismatch, ScenarioError
from .loader import (
    corpus_paths,
    dumps,
    load_corpus,
    load_scenario,
    loads,
    save_scenario,
)
from .model import (
    ChaosSpec,
    ControlSpec,
    ElasticSpec,
    ExpectSpec,
    GoldenSpec,
    LinkSpec,
    PoolSpec,
    Scenario,
    ScheduleSpec,
    TelemetryExpect,
    TenantSpec,
    TopologySpec,
    WorkloadSpec,
)
from .runner import (
    CompiledWorkload,
    ScenarioResult,
    compile_load,
    compile_schedule,
    derive_seed,
    record_scenario,
    run_scenario,
    verify_scenario,
)
from .shapes import (
    CONTINUOUS_SHAPES,
    SHAPES,
    BurstShape,
    ConstantShape,
    DiurnalShape,
    FlashCrowdShape,
    RollingUpgradeShape,
    SequentialShape,
    Shape,
)

__all__ = [
    "BurstShape",
    "CONTINUOUS_SHAPES",
    "ChaosSpec",
    "CompiledWorkload",
    "ConstantShape",
    "ControlSpec",
    "DiurnalShape",
    "ElasticSpec",
    "ExpectSpec",
    "FlashCrowdShape",
    "GoldenMismatch",
    "GoldenSpec",
    "LinkSpec",
    "PoolSpec",
    "RollingUpgradeShape",
    "SHAPES",
    "Scenario",
    "ScenarioError",
    "ScenarioResult",
    "ScheduleSpec",
    "SequentialShape",
    "Shape",
    "TelemetryExpect",
    "TenantSpec",
    "TopologySpec",
    "WorkloadSpec",
    "compile_load",
    "compile_schedule",
    "corpus_paths",
    "derive_seed",
    "dumps",
    "load_corpus",
    "load_scenario",
    "loads",
    "record_scenario",
    "run_scenario",
    "save_scenario",
    "verify_scenario",
]
