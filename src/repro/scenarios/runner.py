"""Compile a :class:`Scenario` onto the simulator and run it.

The pipeline has two halves with a sharp boundary:

1. **Compilation is pure.**  :func:`compile_load` turns every workload's
   shape into an action plan *before* any simulation exists, drawing
   jitter from a per-workload ``random.Random`` whose seed derives from
   ``(scenario.seed, tenant, workload)`` via crc32 of the canonical
   names (stable across runs and processes — never ``hash()``).  Two
   calls with the same scenario produce identical plans.
2. **Execution is seeded.**  :func:`run_scenario` builds the familiar
   recorded stack — ``Simulation(seed)`` → :class:`ReplayRecorder` (and
   optional :class:`RaceDetector`) → :class:`VirtualClusterEnv` — then
   lays the scenario onto it: node pools (with shared
   :class:`~repro.network.NetworkLink` uplinks and elastic staged
   joins), tenants, the chaos overlay, and finally the compiled load.
   The run advances to the horizon, waits for convergence on a fixed
   polling grid, and captures the converged-state digest.

Because every RNG in the stack is derived from the scenario seed and
every wait lands on the deterministic simulation clock, the digest is a
pure function of the scenario — which is what lets the corpus pin
golden digests at all.
"""

import random
import zlib

from repro.analysis.bisect import ReplayRecorder
from repro.analysis.racedetect import RaceDetector
from repro.apiserver.errors import ApiError
from repro.chaos.engine import ChaosEngine, check_convergence
from repro.chaos.faults import (
    ApiRequestFault,
    ApiServerCrash,
    ForcedCompaction,
    NetworkPartition,
    TenantStorm,
    WatchDrop,
    WorkerCrash,
)
from repro.chaos.schedule import OneShot, Periodic, RandomWindows
from repro.config import DEFAULT_CONFIG
from repro.core.env import VirtualClusterEnv
from repro.network import NetworkLink
from repro.simkernel import Simulation
from repro.workloads import LoadGenerator, TenantLoadPattern, TimedActions

from .errors import GoldenMismatch, ScenarioError
from .model import GoldenSpec


def derive_seed(base, *parts):
    """A child seed from the scenario seed and canonical name parts.

    crc32 over the utf-8 of the joined parts (D006-canonical — never
    ``hash()``, which is salted per process), mixed with the base seed.
    """
    return (int(base) + zlib.crc32(":".join(parts).encode("utf-8"))) \
        & 0xFFFFFFFF


# ----------------------------------------------------------------------
# Pure compilation
# ----------------------------------------------------------------------


class CompiledWorkload:
    """One workload's executable plan plus its launch offset."""

    def __init__(self, tenant, workload, plan, start=0.0):
        self.tenant = tenant
        self.workload = workload
        self.plan = plan
        self.start = start

    @property
    def actions(self):
        return getattr(self.plan, "actions", None)


def compile_load(scenario):
    """Compile every workload to a plan.  Pure; deterministic per seed."""
    compiled = []
    for tenant in scenario.tenants:
        for workload in tenant.workloads:
            rng = random.Random(
                derive_seed(scenario.seed, "load", tenant.name,
                            workload.name))
            actions, concurrent = workload.shape.compile(
                rng, jitter=workload.jitter)
            if actions is None:
                # Closed-loop (sequential): no precomputable times.
                shape = workload.shape
                plan = TenantLoadPattern(
                    count=shape.count, mode="sequential", think=shape.think,
                    namespace=workload.namespace,
                    name_prefix=workload.name)
                compiled.append(CompiledWorkload(
                    tenant.name, workload.name, plan, start=workload.start))
            else:
                shifted = sorted(
                    ((workload.start + when, op, index)
                     for when, op, index in actions),
                    key=lambda action: action[0])
                plan = TimedActions(
                    shifted, namespace=workload.namespace,
                    name_prefix=workload.name, concurrent=concurrent,
                    labels={"app": workload.name,
                            "scenario": scenario.name})
                compiled.append(CompiledWorkload(
                    tenant.name, workload.name, plan))
    return compiled


def compile_schedule(spec):
    """ScheduleSpec → a `repro.chaos.schedule` instance."""
    if spec.type == "oneshot":
        return OneShot(at=spec.at, duration=spec.duration)
    if spec.type == "periodic":
        return Periodic(period=spec.period, duration=spec.duration,
                        count=spec.count, offset=spec.offset)
    return RandomWindows(
        mean_gap=spec.mean_gap,
        duration_range=tuple(spec.duration_range or (0.5, 3.0)),
        count=spec.count)


def _compile_fault(entry, env, handles, tenant_specs=None):
    """ChaosSpec → a bound-able fault against the live env."""
    params = entry.params
    tenant_specs = tenant_specs or {}
    if entry.target == "super":
        target = env.super_cluster
        label = "super"
    elif entry.target == "syncer":
        target = None
        label = "syncer"
    else:
        handle = handles[entry.target]
        target = handle.control_plane
        label = entry.target
    if entry.fault == "apiserver-crash":
        return ApiServerCrash(target, name=f"crash:{label}")
    if entry.fault == "request-fault":
        verbs = params.get("verbs")
        return ApiRequestFault(
            target, verbs=tuple(verbs) if verbs else None,
            error_rate=params.get("error_rate", 1.0),
            extra_latency=params.get("extra_latency", 0.0),
            name=f"reqfault:{label}")
    if entry.fault == "watch-drop":
        return WatchDrop(target, fraction=params.get("fraction", 1.0),
                         name=f"watchdrop:{label}")
    if entry.fault == "compaction":
        return ForcedCompaction(target, keep=int(params.get("keep", 0)),
                                name=f"compact:{label}")
    if entry.fault == "partition":
        handle = handles[entry.target]
        client = env.syncer.tenants[handle.key].client
        return NetworkPartition(client, name=f"partition:{label}")
    if entry.fault == "worker-crash":
        return WorkerCrash(env.syncer, count=int(params.get("count", 1)))
    if entry.fault == "tenant-storm":
        # The abuser floods the *super* apiserver under a per-tenant
        # storm identity; its tier defaults to the tenant's declared
        # tier so APF classifies (and sheds) it accordingly.
        tier = params.get("tier")
        if tier is None:
            spec = tenant_specs.get(entry.target)
            tier = spec.tier if spec is not None else None
        return TenantStorm(
            env.super_cluster, user=f"storm-{label}",
            qps=float(params.get("qps", 400.0)),
            concurrency=int(params.get("concurrency", 200)),
            tier=tier, name=f"storm:{label}")
    raise ScenarioError(f"unknown fault {entry.fault!r}")  # pragma: no cover


def scenario_config(control):
    """ControlSpec → a latency/behavior config for the env."""
    from dataclasses import replace

    config = DEFAULT_CONFIG
    if control.optimized:
        # The §9 hot-path optimizations (indexes, sharded dispatch,
        # batched downward writes) — the configuration every corpus
        # scenario runs.
        config = config.with_overrides(syncer=replace(
            config.syncer, use_cache_indexes=True, dispatch_shards=2,
            downward_batch_max=8))
    overrides = {}
    if control.apf:
        overrides["apf"] = replace(config.apf, enabled=True)
    if control.scale_to_zero:
        swapper = replace(config.swapper, enabled=True)
        if control.idle_threshold is not None:
            # Keep the poll cadence proportional so short thresholds
            # are actually observed within a scenario horizon.
            swapper = replace(
                swapper, idle_threshold=control.idle_threshold,
                check_interval=max(0.5, control.idle_threshold / 5.0))
        overrides["swapper"] = swapper
    if overrides:
        config = config.with_overrides(**overrides)
    return config


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


class ScenarioResult:
    """Everything one run produced: digest, counters, verdicts."""

    def __init__(self, scenario, digest, store_events, sim_time, converged,
                 convergence_detail, pods_created, load_errors, telemetry,
                 failures, race_report=None, chaos_report=None):
        self.scenario = scenario
        self.digest = digest
        self.store_events = store_events
        self.sim_time = sim_time
        self.converged = converged
        self.convergence_detail = convergence_detail
        self.pods_created = pods_created
        self.load_errors = load_errors
        self.telemetry = telemetry
        self.failures = failures
        self.race_report = race_report
        self.chaos_report = chaos_report

    @property
    def ok(self):
        return not self.failures

    def to_dict(self):
        return {
            "scenario": self.scenario.name,
            "digest": self.digest,
            "store_events": self.store_events,
            "sim_time": round(self.sim_time, 6),
            "converged": self.converged,
            "pods_created": self.pods_created,
            "load_errors": self.load_errors,
            "telemetry": self.telemetry,
            "failures": list(self.failures),
            "ok": self.ok,
        }


def run_scenario(scenario, race_check=None):
    """Build, run, and judge one scenario.  Returns a ScenarioResult.

    ``race_check`` overrides ``scenario.race_check`` when not None.
    Expectation violations land in ``result.failures`` (the golden
    digest is *not* checked here — see :func:`verify_scenario`).
    """
    scenario.validate()
    want_races = (scenario.race_check if race_check is None
                  else bool(race_check))
    compiled = compile_load(scenario)

    sim = Simulation(seed=scenario.seed)
    recorder = ReplayRecorder(sim)
    detector = RaceDetector(sim) if want_races else None
    control = scenario.control
    env = VirtualClusterEnv(
        seed=scenario.seed, config=scenario_config(control), sim=sim,
        num_virtual_nodes=0, fair_queuing=control.fair_queuing,
        dws_workers=control.dws_workers, uws_workers=control.uws_workers,
        scan_interval=control.scan_interval)
    env.bootstrap()

    # -- topology: node pools, uplinks, elastic staged joins ------------
    for pool in scenario.topology.pools:
        link = None
        if pool.link is not None:
            link = NetworkLink(
                sim, latency=pool.link.latency, jitter=pool.link.jitter,
                loss=pool.link.loss,
                seed=derive_seed(scenario.seed, "link", pool.name),
                name=f"{scenario.name}/{pool.name}")
        initial = pool.elastic.initial if pool.elastic else pool.nodes
        for index in range(initial):
            env.run_coroutine(
                env.add_virtual_node(f"{pool.name}-{index:03d}", link=link),
                name=f"add-node-{pool.name}-{index}")
        if pool.elastic is not None and initial < pool.nodes:
            sim.spawn(_staged_joins(env, pool, link, initial),
                      name=f"pool-join-{pool.name}")

    # -- tenants and their extra namespaces -----------------------------
    handles = {}
    for tenant in scenario.tenants:
        handles[tenant.name] = env.run_coroutine(
            env.create_tenant(tenant.name, weight=tenant.weight,
                              tier=tenant.tier),
            name=f"create-{tenant.name}")
    for tenant in scenario.tenants:
        for namespace in sorted({w.namespace for w in tenant.workloads
                                 if w.namespace != "default"}):
            env.run_coroutine(
                _ensure_namespace(handles[tenant.name], namespace),
                name=f"ns-{tenant.name}-{namespace}")

    # -- chaos overlay ---------------------------------------------------
    engine = ChaosEngine(env, seed=derive_seed(scenario.seed, "chaos"),
                         name=f"chaos-{scenario.name}")
    tenant_specs = {t.name: t for t in scenario.tenants}
    for entry in scenario.chaos:
        engine.add(compile_schedule(entry.schedule),
                   _compile_fault(entry, env, handles, tenant_specs))
    engine.start()

    # -- load ------------------------------------------------------------
    generator = LoadGenerator(sim)
    finished = []
    for index, job in enumerate(compiled):
        sim.spawn(_drive_job(sim, generator, handles[job.tenant], job,
                             finished),
                  name=f"load-{job.tenant}-{job.workload}",
                  affinity=job.tenant)

    env.run_for(scenario.horizon)
    engine.stop()
    env.run_until(lambda: len(finished) >= len(compiled),
                  timeout=scenario.convergence_timeout, poll=0.25)

    # -- convergence + digest capture ------------------------------------
    try:
        detail = engine.verify_convergence(
            timeout=scenario.convergence_timeout, poll=0.5)
        converged = True
    except TimeoutError:
        converged, detail = check_convergence(env)

    telemetry = {}
    for expect in scenario.expect.telemetry:
        family = sim.telemetry.registry.get(expect.metric)
        telemetry[expect.metric] = family.total() if family else 0.0

    failures = _judge(scenario, converged, detail, generator, telemetry,
                      detector)
    return ScenarioResult(
        scenario=scenario, digest=recorder.final_digest,
        store_events=len(recorder.digests), sim_time=sim.now,
        converged=converged, convergence_detail=detail,
        pods_created=generator.submitted, load_errors=generator.errors,
        telemetry=telemetry, failures=failures,
        race_report=(detector.report() if detector else None),
        chaos_report=engine.report() if scenario.chaos else None)


def _staged_joins(env, pool, link, initial):
    """Coroutine: the remaining pool nodes join one per interval."""
    for index in range(initial, pool.nodes):
        yield env.sim.timeout(pool.elastic.interval)
        yield from env.add_virtual_node(f"{pool.name}-{index:03d}",
                                        link=link)


def _ensure_namespace(handle, namespace):
    try:
        yield from handle.create_namespace(namespace)
    except ApiError:
        pass  # already there


def _drive_job(sim, generator, handle, job, finished):
    try:
        if job.start > 0:
            yield sim.timeout(job.start)
        if isinstance(job.plan, TimedActions):
            yield from generator.run_timed(handle.client, job.plan)
        else:
            yield from generator.run_tenant_load(handle.client, job.plan)
    finally:
        finished.append(job.workload)


def _judge(scenario, converged, detail, generator, telemetry, detector):
    """Evaluate the declared expectations; return failure strings."""
    failures = []
    expect = scenario.expect
    if expect.converged and not converged:
        problems = []
        for key in ("missing", "orphaned", "open_circuits"):
            if detail.get(key):
                problems.append(f"{key}={len(detail[key])}")
        queues = detail.get("queues") or {}
        for key, depth in sorted(queues.items()):
            if depth:
                problems.append(f"{key}={depth}")
        failures.append(
            "did not converge within "
            f"{scenario.convergence_timeout:g}s ({', '.join(problems)})")
    if generator.submitted < expect.min_pods_created:
        failures.append(
            f"created {generator.submitted} pods, expected at least "
            f"{expect.min_pods_created}")
    for bound in expect.telemetry:
        total = telemetry.get(bound.metric, 0.0)
        if bound.min is not None and total < bound.min:
            failures.append(
                f"telemetry {bound.metric}={total:g} below expected "
                f"minimum {bound.min:g}")
        if bound.max is not None and total > bound.max:
            failures.append(
                f"telemetry {bound.metric}={total:g} above expected "
                f"maximum {bound.max:g}")
    if detector is not None and not detector.ok:
        failures.append(
            f"race detector flagged {len(detector.conflicts)} "
            f"conflict(s): {detector.conflicts[0].format()}")
    return failures


# ----------------------------------------------------------------------
# Golden record / verify
# ----------------------------------------------------------------------


def record_scenario(scenario):
    """Run once and stamp ``scenario.golden`` from the result.

    Raises :class:`ScenarioError` if the run fails its own declared
    expectations — a golden digest for a broken scenario is worthless.
    """
    result = run_scenario(scenario)
    if not result.ok:
        raise ScenarioError(
            f"refusing to record {scenario.name!r}: the run fails its "
            f"own expectations: {'; '.join(result.failures)}")
    scenario.golden = GoldenSpec(digest=result.digest,
                                 store_events=result.store_events,
                                 sim_time=round(result.sim_time, 6))
    return result


def verify_scenario(scenario, runs=2):
    """Replay ``runs`` times against the recorded golden.

    Every run must reproduce the golden digest exactly (else
    :class:`GoldenMismatch`) and meet the scenario's expectations (else
    :class:`ScenarioError`).  Returns the results.
    """
    if scenario.golden is None:
        raise ScenarioError(
            f"scenario {scenario.name!r} has no golden block; run "
            f"'python -m repro.scenarios record' first")
    results = []
    for _run in range(runs):
        result = run_scenario(scenario)
        if result.digest != scenario.golden.digest:
            raise GoldenMismatch(
                scenario.name, scenario.golden.digest, result.digest,
                expected_events=scenario.golden.store_events,
                actual_events=result.store_events)
        if not result.ok:
            raise ScenarioError(
                f"scenario {scenario.name!r} failed expectations: "
                f"{'; '.join(result.failures)}")
        results.append(result)
    return results
