"""Scenario DSL errors."""


class ScenarioError(ValueError):
    """A scenario file or model failed validation.

    Messages are written to be actionable: they name the YAML path that
    failed (``tenants[1].workloads[0].shape``), the offending value,
    and what would be accepted instead.
    """


class GoldenMismatch(AssertionError):
    """A scenario replayed to a digest different from its recorded golden."""

    def __init__(self, scenario, expected, actual, expected_events=None,
                 actual_events=None):
        self.scenario = scenario
        self.expected = expected
        self.actual = actual
        self.expected_events = expected_events
        self.actual_events = actual_events
        detail = ""
        if expected_events is not None and expected_events != actual_events:
            detail = (f" (store events: recorded {expected_events}, "
                      f"replayed {actual_events})")
        super().__init__(
            f"scenario {scenario!r} diverged from its golden digest: "
            f"recorded {expected[:16]}…, replayed {actual[:16]}…{detail}. "
            f"If the behavior change is intentional, re-record with "
            f"'python -m repro.scenarios record' and explain the drift "
            f"in the PR.")
