"""Exceptions raised by the simulation kernel."""


class SimError(Exception):
    """Base class for all simulation kernel errors."""


class StopSimulation(SimError):
    """Raised internally to stop :meth:`Simulation.run` early."""


class Interrupt(SimError):
    """Raised inside a process that another process interrupted.

    The interrupting party may attach an arbitrary ``cause`` explaining
    why the interrupt happened (e.g. "pod deleted").
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self):
        return f"Interrupt(cause={self.cause!r})"


class EventAlreadyTriggered(SimError):
    """An event was succeeded or failed more than once."""


class SimulationDeadlock(SimError):
    """``run(until_done=True)`` found live processes but no scheduled events."""
