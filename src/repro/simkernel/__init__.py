"""Deterministic discrete-event simulation kernel.

All components of the VirtualCluster reproduction — apiservers, etcd stores,
controllers, kubelets, the resource syncer — execute as cooperating
generator-based processes on one virtual clock.  This keeps 10,000-Pod
stress runs fast and exactly reproducible.
"""

from .accounting import Accounting, CpuAccount, MemoryAccount
from .errors import (
    EventAlreadyTriggered,
    Interrupt,
    SimError,
    SimulationDeadlock,
    StopSimulation,
)
from .events import Condition, Event, Timeout, all_of, any_of
from .loop import Simulation
from .metrics import Histogram, MetricsRegistry, SampleSeries
from .process import Process
from .resources import Channel, ChannelClosed, Lock, Semaphore

__all__ = [
    "Accounting",
    "Channel",
    "ChannelClosed",
    "Condition",
    "CpuAccount",
    "Event",
    "EventAlreadyTriggered",
    "Histogram",
    "Interrupt",
    "Lock",
    "MemoryAccount",
    "MetricsRegistry",
    "Process",
    "SampleSeries",
    "Semaphore",
    "SimError",
    "Simulation",
    "SimulationDeadlock",
    "StopSimulation",
    "Timeout",
    "all_of",
    "any_of",
]
