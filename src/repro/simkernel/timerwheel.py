"""Hierarchical timer wheel staging far-future timers off the event heap.

A discrete-event run schedules far more timers than it dispatches "soon":
reflector relists, heartbeats, APF ``queue_wait`` watchdogs and lease
renewals all sit in the ready heap for a long time, paying O(log n) on
every unrelated push/pop.  The wheel (Varghese & Lauck's hashed
hierarchical wheel) stages those timers in O(1) buckets and only feeds
them to the heap when their bucket comes due.

Correctness invariant — *the wheel never changes dispatch order*: every
entry keeps its original ``(time, seq)`` heap key, and
:meth:`TimerWheel.advance` flushes every bucket that could contain an
entry at or before the heap head **before** the loop pops it.  Once
``advance(upto)`` returns, all staged entries strictly after ``upto``
remain in the wheel and everything else is in the heap, so the heap head
is the global minimum and dispatch order is provably identical to a
heap-only kernel.

Cancellation rides along for free: an entry whose event was orphaned
(triggered-ok with every callback detached — e.g. an ``any_of``-loser
``Timeout``) is dropped at flush time instead of ever entering the heap,
which is where the heap-occupancy win of orphan cancellation comes from.
"""

import heapq

# Bucket granularity of level 0 in simulated seconds, and the fan-out
# between levels.  With SPAN=64 the three levels cover delays of up to
# 0.25*64^3 s ≈ 18h; anything longer lands in the top level's overflow
# buckets (still O(1), just coarser).
GRANULARITY = 0.25
SPAN = 64
LEVELS = 3

# Delays below this go straight to the heap: they are about to fire
# anyway, and near timers dominate the workload.
MIN_WHEEL_DELAY = GRANULARITY


class TimerWheel:
    """Stages ``(time, seq, event)`` entries in hierarchical buckets."""

    __slots__ = ("_levels", "_count", "staged", "cancelled")

    def __init__(self):
        # One dict per level: bucket index -> list of (time, seq, event).
        # Dicts (not preallocated rings) keep sparse far-future schedules
        # cheap and make "earliest nonempty bucket" a min() over keys.
        self._levels = [{} for _ in range(LEVELS)]
        self._count = 0
        self.staged = 0      # entries ever staged (stats)
        self.cancelled = 0   # orphaned entries dropped at flush (stats)

    def __len__(self):
        return self._count

    def add(self, when, seq, event, now):
        """Stage one entry; returns its bucket's start time.

        Caller guarantees ``when - now >= MIN_WHEEL_DELAY``.
        """
        self._count += 1
        self.staged += 1
        return self._place(when, seq, event, now)

    def _place(self, when, seq, event, now):
        delay = when - now
        granularity = GRANULARITY
        top = LEVELS - 1
        for level in range(LEVELS):
            if level == top or delay < granularity * SPAN:
                bucket = int(when / granularity)
                self._levels[level].setdefault(bucket, []).append(
                    (when, seq, event))
                return bucket * granularity
            granularity *= SPAN

    def earliest_boundary(self):
        """Start time of the earliest nonempty bucket, or ``None``.

        Any staged entry fires at or after this time, so the heap head is
        the global minimum whenever it is <= this boundary.
        """
        earliest = None
        granularity = GRANULARITY
        for level in self._levels:
            if level:
                start = min(level) * granularity
                if earliest is None or start < earliest:
                    earliest = start
            granularity *= SPAN
        return earliest

    def advance(self, upto, heap):
        """Flush every bucket starting at or before ``upto`` into ``heap``.

        Higher-level buckets cascade: their entries are re-placed by
        remaining delay, so an 90-minute timer steps level 2 -> level 1 ->
        level 0 -> heap as its deadline approaches, each hop O(1).
        Orphaned entries (event triggered-ok with zero callbacks left) are
        dropped here — they would dispatch as no-ops anyway.
        """
        granularity = GRANULARITY
        for index, level in enumerate(self._levels):
            if level:
                due = [b for b in level if b * granularity <= upto]
                for bucket in due:
                    for when, seq, event in level.pop(bucket):
                        self._count -= 1
                        callbacks = event.callbacks
                        if event._ok and callbacks is not None \
                                and not callbacks:
                            # Orphan: cancel instead of feeding the heap.
                            event.callbacks = None
                            self.cancelled += 1
                            continue
                        if index and when - upto >= MIN_WHEEL_DELAY:
                            # Cascade down by remaining delay.
                            self._place(when, seq, event, upto)
                            self._count += 1
                        else:
                            heapq.heappush(heap, (when, seq, event))
            granularity *= SPAN
