"""The discrete-event simulation loop.

:class:`Simulation` owns the virtual clock and the scheduled-event heap.
All components of the reproduced system (apiservers, controllers, kubelets,
the syncer, ...) run as :class:`~repro.simkernel.process.Process` instances
inside one simulation, which makes large-scale stress tests deterministic
and far faster than wall-clock execution.
"""

import heapq
import random

from .accounting import Accounting
from .errors import SimulationDeadlock, StopSimulation
from .events import Event, Timeout, all_of, any_of
from .metrics import MetricsRegistry
from .process import Process

_CALLBACK = object()


class Simulation:
    """A deterministic discrete-event simulation.

    Parameters
    ----------
    seed:
        Seed for the simulation-owned random generator.  Every run with the
        same seed and workload produces identical timelines.
    """

    def __init__(self, seed=0, perturb_swap=None):
        self._now = 0.0
        self._heap = []
        self._seq = 0
        self._active_process = None
        self.rng = random.Random(seed)
        self._process_count = 0
        # Analysis hooks (repro.analysis): a RaceDetector stamps events
        # with vector clocks, a ReplayRecorder hashes store emissions.
        self.race_detector = None
        self.replay_recorder = None
        self._dispatched = 0
        # Divergence fixture: dispatch the (K+1)-th ready item before
        # the K-th, once — flips exactly one event order so the replay
        # bisector has a real divergence to localize.  Never set outside
        # tests/diagnostics.
        self._perturb_swap = perturb_swap
        self.metrics = MetricsRegistry(self)
        self.accounting = Accounting(self)
        # Unified telemetry hub (repro.telemetry imports nothing from
        # repro.*, so this is cycle-free).
        from repro.telemetry import Telemetry

        self.telemetry = Telemetry(self)

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being stepped, if any."""
        return self._active_process

    def _schedule(self, event, delay=0):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        if self.race_detector is not None:
            self.race_detector.stamp_event(event)
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def _schedule_callback(self, fn, delay=0):
        """Schedule a bare callable (used for late subscribers, interrupts)."""
        if self.race_detector is not None:
            self.race_detector.stamp_callback(fn)
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, (_CALLBACK, fn)))

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------

    def event(self):
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Event succeeding ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events):
        """Event succeeding when any of ``events`` succeeds."""
        return any_of(self, events)

    def all_of(self, events):
        """Event succeeding when all of ``events`` succeed."""
        return all_of(self, events)

    def process(self, generator, name=None):
        """Start a new process from ``generator`` and return it."""
        self._process_count += 1
        return Process(self, generator, name=name)

    # Alias that reads better at call sites spawning background work.
    spawn = process

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, until=None):
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        triggers, returning its value).
        """
        stop_at = None
        stop_event = None
        if isinstance(until, Event):
            stop_event = until
            stop_event.add_callback(self._stop_callback)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(f"until={stop_at} is in the past (now={self._now})")

        try:
            while self._heap:
                when, _seq, item = self._heap[0]
                if stop_at is not None and when > stop_at:
                    self._now = stop_at
                    break
                heapq.heappop(self._heap)
                self._now = when
                self._dispatched += 1
                if (self._perturb_swap is not None
                        and self._dispatched >= self._perturb_swap
                        and self._heap):
                    self._perturb_swap = None
                    _when2, _seq2, early = heapq.heappop(self._heap)
                    self._dispatch_item(early)
                self._dispatch_item(item)
            else:
                if stop_at is not None:
                    self._now = stop_at
        except StopSimulation as stop:
            event = stop.args[0]
            if not event.ok:
                event.defused = True
                raise event.value
            return event.value

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationDeadlock(
                    "run(until=event): event never triggered and no events remain"
                )
            if not stop_event.ok:
                stop_event.defused = True
                raise stop_event.value
            return stop_event.value
        return None

    def _dispatch_item(self, item):
        """Dispatch one popped heap item (event or bare callback)."""
        detector = self.race_detector
        if isinstance(item, tuple) and item[0] is _CALLBACK:
            fn = item[1]
            if detector is not None:
                detector.begin_dispatch(getattr(fn, "_race_stamp", None))
                try:
                    fn()
                finally:
                    detector.end_dispatch()
            else:
                fn()
            return
        if detector is not None:
            detector.begin_dispatch(getattr(item, "_race_stamp", None))
            try:
                item._process()
            finally:
                detector.end_dispatch()
        else:
            item._process()
        if not item.ok and not item.defused and isinstance(item, Process):
            raise item.value

    @staticmethod
    def _stop_callback(event):
        raise StopSimulation(event)

    def peek(self):
        """Time of the next scheduled event, or ``None`` if none remain."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self):
        return f"<Simulation now={self._now:.6f} pending={len(self._heap)}>"
