"""The discrete-event simulation loop.

:class:`Simulation` owns the virtual clock and the scheduled-event heap.
All components of the reproduced system (apiservers, controllers, kubelets,
the syncer, ...) run as :class:`~repro.simkernel.process.Process` instances
inside one simulation, which makes large-scale stress tests deterministic
and far faster than wall-clock execution.
"""

import heapq
import os
import random

from .accounting import Accounting
from .errors import SimulationDeadlock, StopSimulation
from .events import Event, Timeout, all_of, any_of
from .metrics import MetricsRegistry
from .process import Process
from .timerwheel import MIN_WHEEL_DELAY, TimerWheel

_CALLBACK = object()

# REPRO_KERNEL_LEGACY=1 disables the timer wheel (and, in repro.objects,
# the serde codegen): the ablation baseline the kernel-speedup benchmark
# measures against.  Results are byte-identical either way.
_LEGACY_KERNEL = bool(os.environ.get("REPRO_KERNEL_LEGACY"))


class Simulation:
    """A deterministic discrete-event simulation.

    Parameters
    ----------
    seed:
        Seed for the simulation-owned random generator.  Every run with the
        same seed and workload produces identical timelines.
    workers:
        Parallel-backend worker count (``repro.simkernel.parallel``).
        ``None`` reads ``REPRO_WORKERS``; 0 means serial.  Any value
        produces byte-identical results — the merge barrier fixes the
        global dispatch order.
    """

    def __init__(self, seed=0, perturb_swap=None, workers=None):
        self._now = 0.0
        self._heap = []
        self._seq = 0
        self._active_process = None
        self.rng = random.Random(seed)
        self._process_count = 0
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "0") or 0)
        if workers < 0:
            raise ValueError(f"negative worker count: {workers}")
        self.workers = workers
        self._executor = None
        # Far-future timers are staged in a hierarchical wheel instead of
        # the heap; `_wheel_next` caches the earliest bucket boundary so
        # the hot loop pays one float compare per pop.
        self._wheel = None if _LEGACY_KERNEL else TimerWheel()
        self._wheel_next = None
        self._batches = 0
        self._parallel_batches = 0
        self._orphans_skipped = 0
        self._peak_heap = 0
        # Analysis hooks (repro.analysis): a RaceDetector stamps events
        # with vector clocks, a ReplayRecorder hashes store emissions.
        self.race_detector = None
        self.replay_recorder = None
        self._dispatched = 0
        # Divergence fixture: dispatch the (K+1)-th ready item before
        # the K-th, once — flips exactly one event order so the replay
        # bisector has a real divergence to localize.  Never set outside
        # tests/diagnostics.
        self._perturb_swap = perturb_swap
        self.metrics = MetricsRegistry(self)
        self.accounting = Accounting(self)
        # Unified telemetry hub (repro.telemetry imports nothing from
        # repro.*, so this is cycle-free).
        from repro.telemetry import Telemetry

        self.telemetry = Telemetry(self)

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being stepped, if any."""
        return self._active_process

    def _schedule(self, event, delay=0):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        if self.race_detector is not None:
            self.race_detector.stamp_event(event)
        self._seq += 1
        wheel = self._wheel
        if wheel is not None and delay >= MIN_WHEEL_DELAY:
            start = wheel.add(self._now + delay, self._seq, event, self._now)
            if self._wheel_next is None or start < self._wheel_next:
                self._wheel_next = start
            return
        heap = self._heap
        heapq.heappush(heap, (self._now + delay, self._seq, event))
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)

    def _schedule_callback(self, fn, delay=0):
        """Schedule a bare callable (used for late subscribers, interrupts)."""
        if self.race_detector is not None:
            self.race_detector.stamp_callback(fn)
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, (_CALLBACK, fn)))

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------

    def event(self):
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Event succeeding ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events):
        """Event succeeding when any of ``events`` succeeds."""
        return any_of(self, events)

    def all_of(self, events):
        """Event succeeding when all of ``events`` succeed."""
        return all_of(self, events)

    def process(self, generator, name=None, affinity=None):
        """Start a new process from ``generator`` and return it.

        ``affinity`` tags the process (and, transitively, every event it
        creates) with a tenant/shard key for the parallel backend's
        partitioner; it has no effect on scheduling order.
        """
        self._process_count += 1
        return Process(self, generator, name=name, affinity=affinity)

    # Alias that reads better at call sites spawning background work.
    spawn = process

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, until=None):
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        triggers, returning its value).
        """
        stop_at = None
        stop_event = None
        if isinstance(until, Event):
            stop_event = until
            stop_event.add_callback(self._stop_callback)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(f"until={stop_at} is in the past (now={self._now})")

        heap = self._heap
        try:
            while True:
                wheel_next = self._wheel_next
                if wheel_next is not None and \
                        (not heap or wheel_next <= heap[0][0]):
                    self._advance_wheel()
                if not heap:
                    if stop_at is not None:
                        self._now = stop_at
                    break
                when, seq, item = heap[0]
                if stop_at is not None and when > stop_at:
                    self._now = stop_at
                    break
                heapq.heappop(heap)
                self._now = when
                self._dispatched += 1
                self._batches += 1
                if self._perturb_swap is not None:
                    if (self._dispatched >= self._perturb_swap and heap):
                        self._perturb_swap = None
                        _when2, _seq2, early = heapq.heappop(heap)
                        self._dispatch_item(early)
                    self._dispatch_item(item)
                    continue
                if heap and heap[0][0] == when:
                    # Drain the whole ready batch at this timestamp.  Items
                    # scheduled *by* these dispatches carry higher seqs, so
                    # finishing the batch before re-draining preserves the
                    # exact serial order.
                    batch = [(when, seq, item)]
                    while heap and heap[0][0] == when:
                        batch.append(heapq.heappop(heap))
                    self._dispatched += len(batch) - 1
                    if self.workers:
                        self._run_parallel_batch(batch)
                    else:
                        self._run_serial_batch(batch)
                else:
                    self._dispatch_ready(item)
        except StopSimulation as stop:
            event = stop.args[0]
            if not event.ok:
                event.defused = True
                raise event.value
            return event.value

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationDeadlock(
                    "run(until=event): event never triggered and no events remain"
                )
            if not stop_event.ok:
                stop_event.defused = True
                raise stop_event.value
            return stop_event.value
        return None

    def _advance_wheel(self):
        """Flush due wheel buckets so the heap head is the global minimum.

        Loops because a flush can cancel orphans (leaving the heap empty)
        or cascade entries between levels; terminates since each pass
        strictly raises the earliest bucket boundary.
        """
        heap = self._heap
        wheel = self._wheel
        while True:
            upto = heap[0][0] if heap else self._wheel_next
            wheel.advance(upto, heap)
            wheel_next = wheel.earliest_boundary()
            self._wheel_next = wheel_next
            if wheel_next is None or (heap and wheel_next > heap[0][0]):
                break
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)

    def _run_serial_batch(self, batch):
        """Dispatch a same-timestamp batch in seq order on this thread."""
        index = 0
        try:
            for index in range(len(batch)):
                self._dispatch_ready(batch[index][2])
        except BaseException:
            # Leave exactly the state a pop-one-at-a-time loop would
            # have: undispatched items back in the heap, original keys.
            for entry in batch[index + 1:]:
                heapq.heappush(self._heap, entry)
            raise

    def _run_parallel_batch(self, batch):
        """Dispatch a batch on the worker pool behind the merge barrier."""
        executor = self._executor
        if executor is None:
            from .parallel import ParallelExecutor

            executor = self._executor = ParallelExecutor(self, self.workers)
        self._parallel_batches += 1
        undone, exc = executor.run_batch(batch, self._dispatch_ready)
        if exc is not None:
            for entry in undone:
                heapq.heappush(self._heap, entry)
            raise exc

    def _dispatch_ready(self, item):
        """Dispatch one popped item, skipping orphaned events.

        An event that is triggered-ok with zero callbacks left (e.g. an
        ``any_of``-loser ``Timeout`` the winning condition detached from)
        would process as a pure no-op; marking it processed without the
        dispatch bookkeeping is observationally identical and cheaper.
        """
        if type(item) is not tuple:
            callbacks = item.callbacks
            if item._ok and callbacks is not None and not callbacks:
                item.callbacks = None
                self._orphans_skipped += 1
                return
        self._dispatch_item(item)

    def _dispatch_item(self, item):
        """Dispatch one popped heap item (event or bare callback)."""
        detector = self.race_detector
        if isinstance(item, tuple) and item[0] is _CALLBACK:
            fn = item[1]
            if detector is not None:
                detector.begin_dispatch(getattr(fn, "_race_stamp", None))
                try:
                    fn()
                finally:
                    detector.end_dispatch()
            else:
                fn()
            return
        if detector is not None:
            detector.begin_dispatch(getattr(item, "_race_stamp", None))
            try:
                item._process()
            finally:
                detector.end_dispatch()
        else:
            item._process()
        # "Undefused failures crash loudly": any failed event nobody
        # handled — not just a Process — stops the run.  A waiter (or a
        # Condition watching the event) defuses on delivery; a failure
        # with no observer is a bug in the workload, not background noise.
        if not item.ok and not item.defused:
            raise item.value

    @staticmethod
    def _stop_callback(event):
        raise StopSimulation(event)

    def peek(self):
        """Time of the next scheduled event, or ``None`` if none remain."""
        heap = self._heap
        wheel_next = self._wheel_next
        if wheel_next is not None and (not heap or wheel_next <= heap[0][0]):
            self._advance_wheel()
        return heap[0][0] if heap else None

    def kernel_stats(self):
        """Counters describing how the kernel executed (perf tooling)."""
        wheel = self._wheel
        # `is not None`, not truthiness: TimerWheel defines __len__, so a
        # drained wheel is falsy and would zero these counters.
        present = wheel is not None
        return {
            "dispatched": self._dispatched,
            "batches": self._batches,
            "peak_heap": self._peak_heap,
            "pending": len(self._heap) + (len(wheel) if present else 0),
            "wheel_scheduled": wheel.staged if present else 0,
            "timers_cancelled": wheel.cancelled if present else 0,
            "orphans_skipped": self._orphans_skipped,
            "parallel_batches": self._parallel_batches,
            "workers": self.workers,
        }

    def close(self):
        """Shut down the parallel worker pool, if one was started."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __repr__(self):
        wheel = self._wheel
        pending = len(self._heap) + (len(wheel) if wheel is not None else 0)
        return f"<Simulation now={self._now:.6f} pending={pending}>"
