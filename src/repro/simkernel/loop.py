"""The discrete-event simulation loop.

:class:`Simulation` owns the virtual clock and the scheduled-event heap.
All components of the reproduced system (apiservers, controllers, kubelets,
the syncer, ...) run as :class:`~repro.simkernel.process.Process` instances
inside one simulation, which makes large-scale stress tests deterministic
and far faster than wall-clock execution.
"""

import heapq
import random

from .accounting import Accounting
from .errors import SimulationDeadlock, StopSimulation
from .events import Event, Timeout, all_of, any_of
from .metrics import MetricsRegistry
from .process import Process

_CALLBACK = object()


class Simulation:
    """A deterministic discrete-event simulation.

    Parameters
    ----------
    seed:
        Seed for the simulation-owned random generator.  Every run with the
        same seed and workload produces identical timelines.
    """

    def __init__(self, seed=0):
        self._now = 0.0
        self._heap = []
        self._seq = 0
        self._active_process = None
        self.rng = random.Random(seed)
        self._process_count = 0
        self.metrics = MetricsRegistry(self)
        self.accounting = Accounting(self)
        # Unified telemetry hub (repro.telemetry imports nothing from
        # repro.*, so this is cycle-free).
        from repro.telemetry import Telemetry

        self.telemetry = Telemetry(self)

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being stepped, if any."""
        return self._active_process

    def _schedule(self, event, delay=0):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def _schedule_callback(self, fn, delay=0):
        """Schedule a bare callable (used for late subscribers, interrupts)."""
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, (_CALLBACK, fn)))

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------

    def event(self):
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Event succeeding ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events):
        """Event succeeding when any of ``events`` succeeds."""
        return any_of(self, events)

    def all_of(self, events):
        """Event succeeding when all of ``events`` succeed."""
        return all_of(self, events)

    def process(self, generator, name=None):
        """Start a new process from ``generator`` and return it."""
        self._process_count += 1
        return Process(self, generator, name=name)

    # Alias that reads better at call sites spawning background work.
    spawn = process

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, until=None):
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        triggers, returning its value).
        """
        stop_at = None
        stop_event = None
        if isinstance(until, Event):
            stop_event = until
            stop_event.add_callback(self._stop_callback)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(f"until={stop_at} is in the past (now={self._now})")

        try:
            while self._heap:
                when, _seq, item = self._heap[0]
                if stop_at is not None and when > stop_at:
                    self._now = stop_at
                    break
                heapq.heappop(self._heap)
                self._now = when
                if isinstance(item, tuple) and item[0] is _CALLBACK:
                    item[1]()
                    continue
                item._process()
                if not item.ok and not item.defused and isinstance(item, Process):
                    raise item.value
            else:
                if stop_at is not None:
                    self._now = stop_at
        except StopSimulation as stop:
            event = stop.args[0]
            if not event.ok:
                event.defused = True
                raise event.value
            return event.value

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationDeadlock(
                    "run(until=event): event never triggered and no events remain"
                )
            if not stop_event.ok:
                stop_event.defused = True
                raise stop_event.value
            return stop_event.value
        return None

    @staticmethod
    def _stop_callback(event):
        raise StopSimulation(event)

    def peek(self):
        """Time of the next scheduled event, or ``None`` if none remain."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self):
        return f"<Simulation now={self._now:.6f} pending={len(self._heap)}>"
