"""Opt-in parallel execution backend with a deterministic merge barrier.

``Simulation(workers=N)`` (or ``REPRO_WORKERS=N``) drains each ready
same-timestamp batch from the heap, partitions it by tenant/shard
affinity — the same crc32 routing :class:`ShardedFairWorkQueue` uses, so
a tenant's events land on the same worker the syncer shards them to —
and hands the partitions to N persistent worker threads.

**The merge barrier.** Dispatching an event runs arbitrary Python
callbacks against shared state (the MVCC store, work queues, process
generators), so partitions cannot apply their effects concurrently and
still converge to the single-threaded state.  The barrier is a
turnstile: workers execute their partition's entries in order, but each
dispatch waits for its global ``(time, seq)`` turn, so effects are
applied in exactly the order the serial loop would apply them.  The
converged etcd state is therefore byte-identical to ``workers=0`` *by
construction* — not by luck of scheduling — which the replay bisector
and the vector-clock race detector gate in CI.  There is no
configuration in which results may legally differ.

**What can overlap.** Under the turnstile, only work a dispatch performs
*before its effects* could overlap with other partitions — and under
CPython's GIL, pure-Python dispatch cannot overlap at all.  On this
design the thread pool buys structure (affinity partitioning, the
barrier, the digest gate), not wall-clock, and the recorded kernel
speedup comes from the serde codegen, timer wheel, and store caches
(see ``REPRO_KERNEL_LEGACY``); a future free-threaded or subinterpreter
backend slots in behind the same barrier.

An exception (including :class:`StopSimulation` from ``run(until=
event)``) aborts the batch: entries past the failing turn are returned
undispatched so the loop can re-push them with their original heap keys
— exactly the state a serial run would have left behind.
"""

import threading
import zlib


def shard_hash(tenant):
    """Stable (process-independent) tenant hash for shard routing.

    Requires a ``str``: ``str()`` of an arbitrary object falls back to
    the default repr — which embeds a memory address — so routing would
    silently differ across processes (linter rule D006).  crc32 over the
    tenant name's UTF-8 bytes is identical in every process.
    """
    if not isinstance(tenant, str):
        raise TypeError(
            f"shard_hash needs the tenant name as str, "
            f"got {type(tenant).__name__}")
    return zlib.crc32(tenant.encode("utf-8"))


class MergeBarrier:
    """Turnstile granting dispatch turns in global ``(time, seq)`` order."""

    def __init__(self):
        self._cond = threading.Condition()
        self._seqs = ()
        self._index = 0
        self.failure = None  # (seq, exception) of the aborting dispatch

    def start(self, seqs):
        """Arm the barrier for one batch; ``seqs`` is globally sorted."""
        self._seqs = seqs
        self._index = 0
        self.failure = None

    def acquire_turn(self, seq):
        """Block until it is ``seq``'s turn; False if the batch aborted."""
        with self._cond:
            while True:
                if self.failure is not None:
                    return False
                if self._seqs[self._index] == seq:
                    return True
                self._cond.wait()

    def release_turn(self):
        with self._cond:
            self._index += 1
            self._cond.notify_all()

    def fail(self, seq, exc):
        """Abort the batch: no turn after ``seq`` will be granted."""
        with self._cond:
            self.failure = (seq, exc)
            self._cond.notify_all()


class ParallelExecutor:
    """Persistent worker pool executing partitioned batches."""

    def __init__(self, sim, workers):
        self.sim = sim
        self.workers = workers
        self.batches = 0
        self._barrier = MergeBarrier()
        self._dispatch = None
        self._tasks = [None] * workers
        self._ready = [threading.Event() for _ in range(workers)]
        self._done = threading.Condition()
        self._pending = 0
        self._stopping = False
        self._threads = []
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker_loop, args=(index,),
                name=f"sim-worker-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def partition(self, entries):
        """Split batch entries across workers by tenant affinity.

        Entries whose item carries a (process-inherited) ``affinity``
        route by crc32 like the syncer's shards; the rest round-robin.
        Partition choice can never affect results — the merge barrier
        fixes the global effect order — it only decides which turns
        *could* overlap.
        """
        parts = [[] for _ in range(self.workers)]
        for index, entry in enumerate(entries):
            affinity = getattr(entry[2], "affinity", None)
            if affinity is not None:
                slot = shard_hash(affinity) % self.workers
            else:
                slot = index % self.workers
            parts[slot].append(entry)
        return parts

    def run_batch(self, entries, dispatch):
        """Execute one same-timestamp batch; returns (undone, exception).

        ``entries`` are ``(when, seq, item)`` in ascending seq order.  On
        an abort, ``undone`` holds every entry after the failing turn, in
        original heap-key form, for the caller to re-push.
        """
        self.batches += 1
        parts = [p for p in self.partition(entries) if p]
        self._dispatch = dispatch
        self._barrier.start([entry[1] for entry in entries])
        with self._done:
            self._pending = len(parts)
        for index, part in enumerate(parts):
            self._tasks[index] = part
            self._ready[index].set()
        with self._done:
            while self._pending:
                self._done.wait()
        failure = self._barrier.failure
        if failure is None:
            return (), None
        seq, exc = failure
        return [entry for entry in entries if entry[1] > seq], exc

    def _worker_loop(self, index):
        ready = self._ready[index]
        barrier = self._barrier
        while True:
            ready.wait()
            ready.clear()
            if self._stopping:
                return
            for _when, seq, item in self._tasks[index]:
                if not barrier.acquire_turn(seq):
                    break
                try:
                    self._dispatch(item)
                except BaseException as exc:  # noqa: BLE001 — reported to caller
                    barrier.fail(seq, exc)
                    break
                barrier.release_turn()
            self._tasks[index] = None
            with self._done:
                self._pending -= 1
                if not self._pending:
                    self._done.notify_all()

    def close(self):
        self._stopping = True
        for event in self._ready:
            event.set()
        for thread in self._threads:
            thread.join(timeout=1.0)
