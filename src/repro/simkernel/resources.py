"""Synchronization and communication primitives for simulated processes.

These mirror the primitives the real system relies on: mutexes guarding the
work-queue critical sections (whose contention the paper identifies as the
source of the syncer's throughput degradation), semaphores for bounded
concurrency, and channels for message passing (watch streams, gRPC calls).
"""

from collections import deque

from .events import Event


class Lock:
    """A FIFO mutex.

    ``acquire()`` returns an event to ``yield``; ``release()`` hands the lock
    to the next waiter at the current simulated time.  Contended acquisitions
    are counted so benchmarks can report lock contention.
    """

    def __init__(self, sim, name="lock"):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters = deque()
        self.acquisitions = 0
        self.contentions = 0
        self.wait_time = 0.0
        # Race detector: an uncontended release leaves no event edge to
        # the next acquirer, so the releaser's stamp is parked here and
        # merged on the next acquire (release-acquire semantics).
        self._release_stamp = None

    @property
    def locked(self):
        return self._locked

    def acquire(self):
        event = Event(self.sim)
        self.acquisitions += 1
        if not self._locked:
            self._locked = True
            detector = self.sim.race_detector
            if detector is not None and self._release_stamp is not None:
                detector.absorb(self._release_stamp)
                self._release_stamp = None
            event.succeed()
        else:
            self.contentions += 1
            self._waiters.append((event, self.sim.now))
        return event

    def release(self):
        if not self._locked:
            raise RuntimeError(f"release of unlocked {self.name}")
        if self._waiters:
            event, queued_at = self._waiters.popleft()
            self.wait_time += self.sim.now - queued_at
            event.succeed()
        else:
            self._locked = False
            detector = self.sim.race_detector
            if detector is not None:
                self._release_stamp = detector.current_stamp()

    def locked_section(self, body):
        """Run generator ``body`` while holding the lock (helper process)."""

        def section():
            yield self.acquire()
            try:
                result = yield from body
            finally:
                self.release()
            return result

        return section()


class Semaphore:
    """A counting semaphore with FIFO wakeup order."""

    def __init__(self, sim, capacity, name="semaphore"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters = deque()
        # As for Lock: merged stamps of releases with no waiter, carried
        # to the next uncontended acquire.
        self._release_stamp = None

    @property
    def in_use(self):
        return self._in_use

    def acquire(self):
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            detector = self.sim.race_detector
            if detector is not None and self._release_stamp is not None:
                detector.absorb(self._release_stamp)
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self):
        if self._in_use == 0:
            raise RuntimeError(f"release of idle {self.name}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
            detector = self.sim.race_detector
            if detector is not None:
                self._release_stamp = detector.merge_stamps(
                    self._release_stamp, detector.current_stamp())


class Channel:
    """An optionally-bounded FIFO channel between processes.

    ``put`` blocks when a bounded channel is full; ``get`` blocks when the
    channel is empty.  Used for watch streams, RPC transports, and worker
    hand-off.  ``close()`` causes all current and future ``get``s to fail
    with :class:`ChannelClosed` once drained, and ``put`` to fail immediately.
    """

    def __init__(self, sim, capacity=None, name="channel"):
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items = deque()
        self._getters = deque()
        self._putters = deque()  # (event, item)
        self._closed = False
        # Race detector: buffered items carry their producer's stamp in
        # lockstep deques (a buffered hand-off has no event edge — the
        # getter's wake-up event is stamped by the getter side).  Pushed
        # as None when no detector is attached so the deques always stay
        # aligned with _items/_putters.
        self._item_stamps = deque()
        self._putter_stamps = deque()

    def _producer_stamp(self):
        detector = self.sim.race_detector
        return detector.current_stamp() if detector is not None else None

    def __len__(self):
        return len(self._items)

    @property
    def closed(self):
        return self._closed

    def put(self, item):
        event = Event(self.sim)
        if self._closed:
            event.fail(ChannelClosed(self.name))
            return event
        if self._getters:
            self._getters.popleft().succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            self._item_stamps.append(self._producer_stamp())
            event.succeed()
        else:
            self._putters.append((event, item))
            self._putter_stamps.append(self._producer_stamp())
        return event

    def try_put(self, item):
        """Non-blocking put; returns False when a bounded channel is full."""
        if self._closed:
            raise ChannelClosed(self.name)
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            self._item_stamps.append(self._producer_stamp())
            return True
        return False

    def get(self):
        event = Event(self.sim)
        if self._items:
            value = self._items.popleft()
            stamp = self._item_stamps.popleft()
            detector = self.sim.race_detector
            if detector is not None and stamp is not None:
                detector.absorb(stamp)
            event.succeed(value)
            if self._putters:
                putter, item = self._putters.popleft()
                self._items.append(item)
                self._item_stamps.append(self._putter_stamps.popleft())
                putter.succeed()
        elif self._closed:
            event.fail(ChannelClosed(self.name))
        else:
            self._getters.append(event)
        return event

    def close(self):
        """Close the channel; pending getters fail once the buffer drains."""
        if self._closed:
            return
        self._closed = True
        while self._getters:
            self._getters.popleft().fail(ChannelClosed(self.name))
        while self._putters:
            putter, _item = self._putters.popleft()
            putter.fail(ChannelClosed(self.name))
        self._putter_stamps.clear()


class ChannelClosed(Exception):
    """Raised by channel operations after :meth:`Channel.close`."""
