"""Event primitives for the discrete-event simulation kernel.

The design follows the classic SimPy model: an :class:`Event` is a one-shot
condition that processes can wait on by ``yield``-ing it.  An event is
*triggered* when it has been scheduled with an outcome (success or failure)
and *processed* once its callbacks have run.
"""

from .errors import EventAlreadyTriggered

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait for.

    Events carry a value (delivered to waiters on success) or an exception
    (raised inside waiters on failure).
    """

    # Tenant/shard affinity tag for the parallel backend's partitioner
    # (repro.simkernel.parallel).  Purely advisory: it steers which worker
    # a ready event lands on, never what the dispatch order is.
    affinity = None

    def __init__(self, sim):
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        # A failed event whose exception was delivered to a waiter is
        # "defused"; undefused failures crash the simulation loudly instead
        # of passing silently.
        self.defused = False
        # Events created inside a process inherit its tenant affinity, so
        # a control plane's timers/IO route to its tenant's partition.
        active = sim._active_process
        if active is not None and active.affinity is not None:
            self.affinity = active.affinity

    @property
    def triggered(self):
        """True once the event has an outcome (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded. Only meaningful once triggered."""
        return self._ok

    @property
    def value(self):
        """The event outcome (value or exception)."""
        if self._value is _PENDING:
            raise AttributeError("event not yet triggered")
        return self._value

    def succeed(self, value=None, delay=0):
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise EventAlreadyTriggered(repr(self))
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception, delay=0):
        """Trigger the event with an exception to be raised in waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise EventAlreadyTriggered(repr(self))
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback):
        """Register ``callback(event)`` to run when the event is processed."""
        if self.callbacks is None:
            # Already processed: run inline via an immediate scheduling so
            # late subscribers still observe the outcome.
            self.sim._schedule_callback(lambda: callback(self))
        else:
            self.callbacks.append(callback)

    def _detach(self, callback):
        """Remove a registered callback (no-op if absent or processed).

        A triggered-ok event whose last callback is detached becomes an
        *orphan*: the loop skips its dispatch and the timer wheel drops it
        before it ever reaches the heap (see ``Simulation.run``).
        """
        callbacks = self.callbacks
        if callbacks is not None:
            try:
                callbacks.remove(callback)
            except ValueError:
                return
            if not callbacks and self._value is not _PENDING \
                    and not self._ok:
                # Detaching is a deliberate abandonment of the wait: when
                # the last observer of an already-failed event walks away
                # (e.g. a worker interrupted while blocked on a queue the
                # shutdown just failed), the failure counts as handled —
                # it must not crash the loop as undefused.
                self.defused = True

    def _process(self):
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)

    def __repr__(self):
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Condition(Event):
    """Waits for a combination of other events.

    ``evaluate`` receives (events, n_triggered_ok) and returns True once the
    condition holds.  On success the condition's value is a dict mapping each
    triggered event to its value.  The condition fails as soon as any
    constituent event fails.
    """

    def __init__(self, sim, events, evaluate):
        super().__init__(sim)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        self._fired = []
        for event in self._events:
            if event.sim is not sim:
                raise ValueError("events from different simulations")
        if not self._events and not self.triggered:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_event)

    def _on_event(self, event):
        if self.triggered:
            # The condition already has an outcome.  A late-succeeding
            # constituent (an any_of loser) is irrelevant; a late *failure*
            # must NOT be swallowed here — leave it undefused so the loop's
            # undefused-failure check surfaces it, unless another waiter
            # handles it first ("undefused failures crash loudly").
            return
        detector = self.sim.race_detector
        if detector is not None:
            # Accumulate every constituent event's stamp: a waiter on
            # all_of(...) happens-after each of its events, not only the
            # one whose dispatch finally triggers the condition.
            self._race_acc = detector.merge_stamps(
                getattr(self, "_race_acc", None), detector.context_stamp())
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            self._detach_settled()
            return
        self._count += 1
        self._fired.append(event)
        if self._evaluate(self._events, self._count):
            self.succeed({ev: ev.value for ev in self._fired})
            self._detach_settled()

    def _detach_settled(self):
        """Drop our callback from constituents that can no longer matter.

        Once the condition has an outcome, a constituent that already
        *succeeded* can never affect it again — detaching orphans pending
        any_of-loser Timeouts so the loop/timer wheel can skip them instead
        of carrying them in the heap until their deadline.  Constituents
        that have not triggered yet keep the callback: they may still
        *fail*, and that failure must stay observable.
        """
        for ev in self._events:
            if ev.triggered and ev._ok:
                ev._detach(self._on_event)


def any_of(sim, events):
    """Condition that succeeds when at least one event succeeds."""
    return Condition(sim, events, lambda events, count: count >= 1)


def all_of(sim, events):
    """Condition that succeeds when every event succeeds."""
    return Condition(sim, events, lambda events, count: count == len(events))
