"""CPU-time and memory accounting for simulated components.

The paper reports the syncer's accumulated CPU time (Fig. 10 top) and peak
resident set size (Fig. 10 bottom).  Real processes don't exist in the
simulation, so components explicitly charge CPU seconds for the work they
model and report memory for the state they hold (informer caches, queues).
"""

from collections import defaultdict


class CpuAccount:
    """Accumulates CPU seconds charged by one logical process."""

    def __init__(self, name):
        self.name = name
        self.seconds = 0.0
        self.by_activity = defaultdict(float)

    def charge(self, seconds, activity="work"):
        if seconds < 0:
            raise ValueError("negative CPU charge")
        self.seconds += seconds
        self.by_activity[activity] += seconds


class MemoryAccount:
    """Tracks current and peak bytes held by one logical process.

    Components register *meters* — zero-argument callables returning their
    current byte usage — and :meth:`snapshot` sums them.  This mirrors how
    the syncer's RSS is dominated by its informer caches plus queues.
    """

    def __init__(self, name):
        self.name = name
        self._meters = {}
        self.peak = 0
        self.current = 0
        self.timeline = []

    def register_meter(self, name, fn):
        self._meters[name] = fn

    def unregister_meter(self, name):
        self._meters.pop(name, None)

    def snapshot(self, now):
        total = 0
        for fn in self._meters.values():
            total += fn()
        self.current = total
        if total > self.peak:
            self.peak = total
        self.timeline.append((now, total))
        return total


class Accounting:
    """Registry of CPU and memory accounts for a simulation."""

    def __init__(self, sim):
        self.sim = sim
        self.cpu = {}
        self.memory = {}

    def cpu_account(self, name):
        if name not in self.cpu:
            self.cpu[name] = CpuAccount(name)
        return self.cpu[name]

    def memory_account(self, name):
        if name not in self.memory:
            self.memory[name] = MemoryAccount(name)
        return self.memory[name]

    def sampler(self, account_name, interval=0.5):
        """A process that snapshots a memory account periodically."""
        account = self.memory_account(account_name)

        def run():
            while True:
                account.snapshot(self.sim.now)
                yield self.sim.timeout(interval)

        return run()
