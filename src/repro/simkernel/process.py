"""Generator-based simulated processes.

A process is a Python generator that yields :class:`~repro.simkernel.events.Event`
objects; the kernel resumes the generator when the yielded event fires.  The
process object itself is an event that triggers when the generator returns
(success, with the return value) or raises (failure).
"""

from .errors import Interrupt
from .events import Event


class Process(Event):
    """Wraps a generator and drives it through the event loop."""

    def __init__(self, sim, generator, name=None, affinity=None):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        if affinity is not None:
            # Explicit tag wins over the affinity inherited (via
            # Event.__init__) from the spawning process.
            self.affinity = affinity
        self._waiting_on = None
        if sim.race_detector is not None:
            sim.race_detector.register_process(self)
        # Kick off the process at the current simulation time.
        init = Event(sim)
        init._ok = True
        init._value = None
        sim._schedule(init, 0)
        init.add_callback(self._resume)

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Raise :class:`Interrupt` inside the process at the current time.

        Interrupting a finished process is a no-op.
        """
        if self.triggered:
            return
        self.sim._schedule_callback(lambda: self._throw_interrupt(cause))

    def _throw_interrupt(self, cause):
        if self.triggered:
            return
        waited = self._waiting_on
        if waited is not None:
            # Detach: the interrupted wait must not resume the process later.
            waited._detach(self._resume)
        self._waiting_on = None
        self._step(Interrupt(cause), throw=True)

    def _resume(self, event):
        self._waiting_on = None
        if event.ok:
            self._step(event.value, throw=False)
        else:
            event.defused = True
            self._step(event.value, throw=True)

    def _step(self, value, throw):
        sim = self.sim
        prev = sim._active_process
        sim._active_process = self
        if sim.race_detector is not None:
            # Merge the dispatched event's stamp into this process's
            # clock: resuming on an event is a happens-before edge from
            # whoever triggered it.
            sim.race_detector.on_step(self)
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if not isinstance(exc, Exception):
                raise
            self.fail(exc)
            return
        finally:
            sim._active_process = prev

        if not isinstance(target, Event):
            error = TypeError(
                f"process {self.name!r} yielded {target!r}; expected an Event"
            )
            self._generator.close()
            self.fail(error)
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self):
        return f"<Process {self.name!r} alive={self.is_alive}>"
