"""Metric recording for simulated components.

Provides counters, gauges, timestamped sample series, and fixed-bucket
histograms — enough to regenerate every figure and table in the paper.
"""

import math
from collections import defaultdict


class Histogram:
    """A histogram over explicit bucket upper bounds (plus +inf overflow)."""

    def __init__(self, bounds):
        self.bounds = sorted(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self._samples = []

    def observe(self, value):
        self.total += 1
        self.sum += value
        self._samples.append(value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self):
        return self.sum / self.total if self.total else 0.0

    def percentile(self, pct):
        """Exact percentile over recorded samples (pct in [0, 100])."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if pct <= 0:
            return ordered[0]
        if pct >= 100:
            return ordered[-1]
        rank = (pct / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def samples(self):
        return list(self._samples)

    def bucket_counts(self):
        """List of ((low, high), count) pairs, high=None for overflow."""
        out = []
        low = 0.0
        for bound, count in zip(self.bounds, self.counts):
            out.append(((low, bound), count))
            low = bound
        out.append(((low, None), self.counts[-1]))
        return out


class SampleSeries:
    """Timestamped (t, value) samples, e.g. memory usage over time."""

    def __init__(self):
        self.points = []

    def record(self, t, value):
        self.points.append((t, value))

    @property
    def peak(self):
        return max((v for _t, v in self.points), default=0.0)

    @property
    def last(self):
        return self.points[-1][1] if self.points else 0.0


class MetricsRegistry:
    """Per-simulation registry of named metrics."""

    def __init__(self, sim):
        self.sim = sim
        self.counters = defaultdict(float)
        self.gauges = {}
        self.series = defaultdict(SampleSeries)
        self.histograms = {}

    def inc(self, name, amount=1.0):
        self.counters[name] += amount

    def set_gauge(self, name, value):
        self.gauges[name] = value

    def sample(self, name, value):
        self.series[name].record(self.sim.now, value)

    def histogram(self, name, bounds=None):
        if name not in self.histograms:
            if bounds is None:
                bounds = [0.5, 1, 2, 4, 6, 8, 10, 15, 20, 30, 60]
            self.histograms[name] = Histogram(bounds)
        return self.histograms[name]

    def observe(self, name, value, bounds=None):
        self.histogram(name, bounds).observe(value)
