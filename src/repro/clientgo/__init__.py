"""client-go analogue: clients, reflectors, informers, work queues."""

from .backoff import JitteredBackoff
from .cache import (
    INDEX_LABELS,
    INDEX_NAMESPACE,
    ObjectCache,
    estimate_object_bytes,
)
from .client import Client, Kubeconfig
from .fairqueue import FairWorkQueue, ShardedFairWorkQueue, shard_hash
from .informer import InformerFactory, SharedInformer
from .leaderelection import LEASE_NAMESPACE, LeaderElector
from .reflector import ADDED, DELETED, MODIFIED, Reflector
from .workqueue import DelayingQueue, RateLimitingQueue, ShutDown, WorkQueue

__all__ = [
    "ADDED",
    "Client",
    "DELETED",
    "DelayingQueue",
    "FairWorkQueue",
    "INDEX_LABELS",
    "INDEX_NAMESPACE",
    "InformerFactory",
    "JitteredBackoff",
    "Kubeconfig",
    "LEASE_NAMESPACE",
    "LeaderElector",
    "MODIFIED",
    "ObjectCache",
    "RateLimitingQueue",
    "Reflector",
    "ShardedFairWorkQueue",
    "SharedInformer",
    "ShutDown",
    "WorkQueue",
    "estimate_object_bytes",
    "shard_hash",
]
