"""client-go analogue: clients, reflectors, informers, work queues."""

from .cache import ObjectCache, estimate_object_bytes
from .client import Client, Kubeconfig
from .fairqueue import FairWorkQueue
from .informer import InformerFactory, SharedInformer
from .reflector import ADDED, DELETED, MODIFIED, Reflector
from .workqueue import DelayingQueue, RateLimitingQueue, ShutDown, WorkQueue

__all__ = [
    "ADDED",
    "Client",
    "DELETED",
    "DelayingQueue",
    "FairWorkQueue",
    "InformerFactory",
    "Kubeconfig",
    "MODIFIED",
    "ObjectCache",
    "RateLimitingQueue",
    "Reflector",
    "SharedInformer",
    "ShutDown",
    "WorkQueue",
    "estimate_object_bytes",
]
