"""Reflector: list+watch one resource type into a local cache.

Implements the client-go loop from the paper's Fig. 3: an initial LIST
seeds the cache and establishes the start revision, then a WATCH streams
changes.  On watch failure (apiserver restart, compacted revision) the
reflector relists — the exact behaviour whose cost the paper measures in
the syncer-restart experiment (§IV-C).

Relists back off exponentially with deterministic jitter (seeded from the
simulation RNG), so a down apiserver is not hammered at a fixed cadence
and a thundering herd of reflectors decorrelates after a shared outage.
A successful list resets the backoff.
"""

from repro.apiserver.errors import ApiError
from repro.simkernel.errors import Interrupt
from repro.simkernel.resources import ChannelClosed
from repro.storage.errors import RevisionCompacted
from repro.telemetry import telemetry_of

from .backoff import JitteredBackoff

ADDED = "ADDED"
MODIFIED = "MODIFIED"
DELETED = "DELETED"
SYNC = "SYNC"


class Reflector:
    """Drives list+watch and forwards events to a delegate.

    The delegate must expose ``on_replace(objs)`` and
    ``on_event(kind, obj)``.
    """

    def __init__(self, sim, client, plural, delegate, namespace=None,
                 label_selector=None, field_selector=None,
                 relist_backoff=1.0, max_relist_backoff=30.0,
                 backoff_jitter=0.5):
        self.sim = sim
        self.client = client
        self.plural = plural
        self.delegate = delegate
        self.namespace = namespace
        self.label_selector = label_selector
        self.field_selector = field_selector
        self.relist_backoff = relist_backoff
        self.max_relist_backoff = max_relist_backoff
        self.backoff_jitter = backoff_jitter
        self._backoff = JitteredBackoff(sim.rng, relist_backoff,
                                        max_relist_backoff,
                                        jitter=backoff_jitter,
                                        max_exponent=16)
        self.has_synced = False
        self.list_count = 0
        self.watch_failures = 0
        telemetry = telemetry_of(sim)
        self._lists_counter = telemetry.counter(
            "reflector_lists_total", "reflector relists",
            labels=("resource",)).labels(resource=plural)
        self._watch_failures_counter = telemetry.counter(
            "reflector_watch_failures_total", "broken/compacted watches",
            labels=("resource",)).labels(resource=plural)
        self._consecutive_failures = 0
        self._retry_after_hint = None
        self._stopped = False
        self._stream = None
        self._process = None

    def start(self):
        self._process = self.sim.spawn(self.run(),
                                       name=f"reflector-{self.plural}")
        return self._process

    def stop(self):
        self._stopped = True
        if self._stream is not None:
            self._stream.stop()
            self._stream = None
        if self._process is not None:
            self._process.interrupt("reflector stopped")

    def next_backoff(self):
        """Delay before the next relist attempt.

        A server-provided Retry-After hint (APF shedding, 429) overrides
        the jittered exponential schedule: the server knows its queue
        pressure better than the client's failure count does.  One-sided
        jitter still applies so shed reflectors don't relist in lockstep.
        """
        hint = self._retry_after_hint
        self._retry_after_hint = None
        if hint:
            return hint * (1.0 + self._backoff.jitter * self.sim.rng.random())
        return self._backoff.delay(self._consecutive_failures)

    def run(self):
        """The list-then-watch loop."""
        try:
            while not self._stopped:
                try:
                    items, revision = yield from self.client.list(
                        self.plural, namespace=self.namespace,
                        label_selector=self.label_selector,
                        field_selector=self.field_selector)
                    self.list_count += 1
                    self._lists_counter.inc()
                    self._consecutive_failures = 0
                    self.delegate.on_replace(items)
                    self.has_synced = True
                    self._stream = self.client.watch(
                        self.plural, namespace=self.namespace,
                        from_revision=int(revision),
                        label_selector=self.label_selector,
                        field_selector=self.field_selector)
                    yield from self._consume(self._stream)
                except (ChannelClosed, RevisionCompacted):
                    self.watch_failures += 1
                    self._watch_failures_counter.inc()
                    self._consecutive_failures += 1
                except ApiError as exc:
                    self.watch_failures += 1
                    self._watch_failures_counter.inc()
                    self._consecutive_failures += 1
                    self._retry_after_hint = getattr(exc, "retry_after",
                                                     None)
                finally:
                    # Never leave a dangling stream registered with the
                    # apiserver/store across relists or interrupts.
                    if self._stream is not None:
                        self._stream.stop()
                        self._stream = None
                if self._stopped:
                    return
                yield self.sim.timeout(self.next_backoff())
        except Interrupt:
            return
        finally:
            if self._stream is not None:
                self._stream.stop()
                self._stream = None

    def _consume(self, stream):
        while not self._stopped:
            kind, obj = yield from stream.next()
            self.delegate.on_event(kind, obj)
