"""client-go style work queues.

:class:`WorkQueue` reproduces the exact semantics of client-go's ``Type``:

- an item present in the queue is **deduplicated** (adding it again is a
  no-op) — the paper leans on this to argue the syncer's queues cannot
  grow without bound;
- an item currently being processed that is re-added goes to a *dirty*
  set and is re-queued when the worker calls :meth:`done`;
- :meth:`get` blocks (in simulated time) until an item is available.

:class:`RateLimitingQueue` adds per-item exponential backoff for retries,
and :class:`DelayingQueue` supports ``add_after``.
"""

from collections import deque

from repro.simkernel.events import Event
from repro.telemetry import telemetry_of

from .backoff import JitteredBackoff


class ShutDown(Exception):
    """The queue was shut down while a worker waited on get()."""


class WorkQueue:
    """FIFO queue with client-go dedup/dirty/processing semantics."""

    def __init__(self, sim, name="workqueue"):
        self.sim = sim
        self.name = name
        self._queue = deque()
        self._dirty = set()
        self._processing = set()
        self._waiters = deque()
        self._shutdown = False
        self.added_total = 0
        self.deduped_total = 0
        self._enqueue_times = {}
        # Race detector: producers' stamps per queued item, attached to
        # the worker's get() event at dispatch (the queue buffer is a
        # cross-process carrier with no event edge of its own).
        self._item_stamps = {}
        self.wait_time_total = 0.0
        # Registry counters aggregate across same-named queues (one
        # informer queue per control plane shares a name); the int
        # attributes above stay the per-instance source of truth.
        telemetry = telemetry_of(sim)
        self._adds_counter = telemetry.counter(
            "workqueue_adds_total", "workqueue adds (dedup hits included)",
            labels=("queue",)).labels(queue=name)
        self._deduped_counter = telemetry.counter(
            "workqueue_deduped_total", "adds absorbed by dedup",
            labels=("queue",)).labels(queue=name)
        self._wait_hist = telemetry.histogram(
            "workqueue_wait_seconds", "time queued before dispatch",
            labels=("queue",)).labels(queue=name)

    def __len__(self):
        return len(self._queue)

    @property
    def is_shutdown(self):
        return self._shutdown

    def add(self, item):
        """Enqueue ``item`` unless it is already pending."""
        if self._shutdown:
            return
        self.added_total += 1
        self._adds_counter.inc()
        detector = self.sim.race_detector
        if detector is not None:
            # Merged, not replaced: a dedup-absorbed add still orders
            # this producer before the item's eventual worker.
            self._item_stamps[item] = detector.merge_stamps(
                self._item_stamps.get(item), detector.current_stamp())
        if item in self._dirty:
            self.deduped_total += 1
            self._deduped_counter.inc()
            return
        self._dirty.add(item)
        if item in self._processing:
            # Will be re-queued by done().
            return
        self._push(item)

    def _push(self, item):
        self._enqueue_times.setdefault(item, self.sim.now)
        waiter = self._pop_live_waiter()
        if waiter is not None:
            self._dispatch(item, waiter)
        else:
            self._queue.append(item)

    def _pop_live_waiter(self):
        """Next waiter that still has a process listening.

        A worker interrupted while blocked in ``get()`` detaches from its
        event but the event stays queued; dispatching an item to such a
        dead waiter would strand the item in the processing set forever.
        """
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.event.callbacks:
                return waiter
        return None

    def _dispatch(self, item, waiter):
        self._dirty.discard(item)
        self._processing.add(item)
        queued_at = self._enqueue_times.pop(item, self.sim.now)
        self.wait_time_total += self.sim.now - queued_at
        self._wait_hist.observe(self.sim.now - queued_at)
        stamp = self._item_stamps.pop(item, None)
        if stamp is not None:
            waiter.event._race_acc = stamp
        waiter.succeed((item, queued_at))

    def get(self):
        """Event resolving to ``(item, enqueued_at)``; marks it processing."""
        event = Event(self.sim)
        if self._shutdown and not self._queue:
            event.fail(ShutDown(self.name))
            return event
        if self._queue:
            item = self._queue.popleft()
            self._dispatch(item, _ImmediateWaiter(event))
            return event
        self._waiters.append(_DeferredWaiter(event))
        return event

    def done(self, item):
        """Worker finished ``item``; re-queues it if it went dirty."""
        self._processing.discard(item)
        if item in self._dirty:
            if not self._shutdown:
                self._push(item)
            else:
                self._dirty.discard(item)

    def shutdown(self):
        """Wake every blocked ``get()`` waiter with :class:`ShutDown`.

        Items already queued may still be drained; ``done()`` afterwards
        is a no-op rather than an error.
        """
        self._shutdown = True
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.event.callbacks:
                waiter.fail(ShutDown(self.name))

    def restart(self):
        """Re-open a shut-down queue (an HA standby promoted to active
        restarts its controllers on the same queue instances)."""
        self._shutdown = False

    def stats(self):
        return {
            "depth": len(self._queue),
            "added": self.added_total,
            "deduped": self.deduped_total,
            "processing": len(self._processing),
        }


class _ImmediateWaiter:
    """Adapter so _dispatch can succeed an already-created event."""

    __slots__ = ("event",)

    def __init__(self, event):
        self.event = event

    def succeed(self, value):
        self.event.succeed(value)

    def fail(self, exc):
        self.event.fail(exc)


class _DeferredWaiter(_ImmediateWaiter):
    pass


class DelayingQueue(WorkQueue):
    """WorkQueue plus ``add_after(item, delay)``."""

    def add_after(self, item, delay):
        if delay <= 0:
            self.add(item)
            return

        def later():
            yield self.sim.timeout(delay)
            self.add(item)

        self.sim.spawn(later(), name=f"{self.name}-delayed-add")


class RateLimitingQueue(DelayingQueue):
    """DelayingQueue plus per-item jittered exponential retry backoff.

    ``jitter`` stretches each delay by up to that fraction (drawn from the
    simulation RNG, so runs stay deterministic per seed); it decorrelates
    retry storms after a shared failure, like client-go's workqueue
    ``ItemExponentialFailureRateLimiter`` combined with flowcontrol jitter.
    """

    def __init__(self, sim, name="ratelimit-queue", base_delay=0.005,
                 max_delay=10.0, jitter=0.1):
        super().__init__(sim, name=name)
        self._base_delay = base_delay
        self._max_delay = max_delay
        self._jitter = jitter
        self._backoff = JitteredBackoff(sim.rng, base_delay, max_delay,
                                        jitter=jitter)
        self._failures = {}

    def backoff_for(self, item):
        """The (jittered, capped) delay the next retry of ``item`` pays."""
        return self._backoff.delay(self._failures.get(item, 0))

    def add_rate_limited(self, item, retry_after=None):
        """Requeue a failed item after a backoff delay.

        ``retry_after`` is an optional server-provided hint (429 +
        Retry-After from APF shedding): it overrides the per-item
        exponential schedule, with the queue's one-sided jitter still
        applied so a shed batch doesn't retry in lockstep.  The failure
        streak advances either way.
        """
        if retry_after:
            delay = retry_after * (1.0 + self._jitter * self.sim.rng.random())
        else:
            delay = self.backoff_for(item)
        self._failures[item] = self._failures.get(item, 0) + 1
        self.add_after(item, delay)

    def forget(self, item):
        self._failures.pop(item, None)

    def num_requeues(self, item):
        return self._failures.get(item, 0)
