"""Lease-based leader election with fencing tokens (client-go analogue).

Any component can run active/standby by giving each replica a
:class:`LeaderElector` pointed at the same Lease object.  Exactly one
replica holds the lease at a time; the others retry at a jittered
interval and take over only once the holder's claim has *provably*
lapsed.

Mutual exclusion relies on three things, all enforced here:

* **Conservative self-view.**  A holder stamps ``renew_time`` with the
  simulation clock *before* issuing the write, and considers itself
  leader strictly while ``now < renew_time + lease_duration``.  The
  write can only land at or after that stamp, so the holder's own view
  of its deadline is never later than what any challenger reads from
  the lease.
* **Expiry-only takeover.**  A challenger overwrites the lease only
  when ``now >= renew_time + lease_duration`` — i.e. at or after the
  instant the holder has already stopped claiming leadership.
* **Optimistic concurrency.**  All writes go through the apiserver's
  resource-version CAS, so two challengers racing for an expired lease
  cannot both win: the loser gets ``Conflict`` and re-reads.

The lease's ``lease_transitions`` counter increments on every
acquisition and doubles as the **fencing token**: storage-side fencing
(``EtcdStore.check_fence``) rejects writes stamped with a token lower
than the highest one seen, which stops a deposed leader's in-flight
batches from landing after a successor has taken over.

``partition()`` models the dangerous half of a network partition: the
elector stops renewing (it cannot reach the apiserver) but its owner
keeps working until ``notice_delay`` after the lease deadline — the
window in which split-brain writes are emitted and fencing must hold.
"""

from repro.apiserver.errors import ApiError
from repro.objects import Lease, LeaseSpec, ObjectMeta
from repro.simkernel import Interrupt

from .backoff import JitteredBackoff

LEASE_NAMESPACE = "kube-system"


class LeaderElector:
    """Acquire/renew/release loop for one replica contending for a lease.

    Callbacks:

    * ``on_started_leading(token)`` — fired (synchronously, from the
      elector's process) right after an acquisition; ``token`` is the
      fencing token for this leadership term.
    * ``on_stopped_leading(reason)`` — fired when leadership is lost
      (renewal failure, steal observed, partition noticed).  Not fired
      on :meth:`crash`, which models a process death that never gets to
      run cleanup.
    """

    def __init__(self, sim, client, name, identity,
                 namespace=LEASE_NAMESPACE, lease_duration=10.0,
                 renew_interval=3.0, retry_interval=1.0, jitter=0.2,
                 on_started_leading=None, on_stopped_leading=None):
        if renew_interval >= lease_duration:
            raise ValueError("renew_interval must be < lease_duration")
        self.sim = sim
        self.client = client
        self.name = name
        self.identity = identity
        self.namespace = namespace
        self.lease_duration = lease_duration
        self.renew_interval = renew_interval
        self.retry_interval = retry_interval
        self.jitter = jitter
        self.on_started_leading = on_started_leading
        self.on_stopped_leading = on_stopped_leading
        # Retry backoff for acquisition attempts while the apiserver is
        # unreachable (or the lease namespace does not exist yet — the
        # elector may start before bootstrap creates kube-system, which
        # surfaces as a non-retryable Forbidden from admission).
        self._retry_backoff = JitteredBackoff(
            sim.rng, retry_interval, max(lease_duration, 4 * retry_interval),
            jitter=jitter)
        self._leading = False
        self._deadline = float("-inf")
        self._token = 0
        self._process = None
        self._stopped = False
        self._partitioned = False
        self._partition_notice = 0.0
        self.acquisitions = 0
        self.renewals = 0
        self.losses = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_leader(self):
        """Live mutual-exclusion check: strictly before the deadline."""
        return (self._leading and not self._stopped
                and self.sim.now < self._deadline)

    @property
    def fencing_token(self):
        """Token for the current (or most recent) leadership term."""
        return self._token

    @property
    def deadline(self):
        return self._deadline

    def stats(self):
        return {
            "identity": self.identity,
            "is_leader": self.is_leader,
            "fencing_token": self._token,
            "acquisitions": self.acquisitions,
            "renewals": self.renewals,
            "losses": self.losses,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        if self._process is None:
            self._stopped = False
            self._process = self.sim.spawn(
                self._run(), name=f"elector-{self.name}-{self.identity}")
        return self._process

    def stop(self, release=True):
        """Graceful shutdown: stop contending and (best effort) release
        the lease so a standby can take over without waiting for expiry."""
        self._stopped = True
        if self._process is not None:
            process, self._process = self._process, None
            process.interrupt("elector stop")
        was_leading = self._leading
        self._leading = False
        if was_leading and release:
            self.sim.spawn(self._release(),
                           name=f"elector-release-{self.identity}")

    def crash(self):
        """Model an abrupt process death: no release, no callbacks.
        Standbys must wait out the lease before taking over."""
        self._stopped = True
        if self._process is not None:
            process, self._process = self._process, None
            process.interrupt("elector crash")
        self._leading = False

    def partition(self, notice_delay=0.0):
        """Cut this elector off from the apiserver: renewals stop, and
        the owner is told it lost only ``notice_delay`` seconds after
        the lease deadline (the split-brain window fencing must cover)."""
        self._partitioned = True
        self._partition_notice = notice_delay

    def heal(self):
        self._partitioned = False

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------

    def _jittered(self, base):
        return base * (1.0 + self.jitter * self.sim.rng.random())

    def _run(self):
        try:
            while not self._stopped:
                if not self._leading:
                    won = False
                    if not self._partitioned:
                        won = yield from self._try_acquire()
                    if won:
                        self._retry_backoff.reset()
                    else:
                        yield self.sim.timeout(self._retry_backoff.next())
                    continue
                # Leading: sleep until the next renewal is due, then
                # retry renewals until success or the deadline passes.
                yield self.sim.timeout(self._jittered(self.renew_interval))
                yield from self._renew_until_resolved()
        except Interrupt:
            pass

    def _renew_until_resolved(self):
        while self._leading and not self._stopped:
            if self._partitioned:
                if self.sim.now < self._deadline:
                    yield self.sim.timeout(
                        min(self.retry_interval,
                            self._deadline - self.sim.now))
                    continue
                # Deadline passed while cut off.  ``is_leader`` is
                # already False; the owner notices after the delay.
                if self._partition_notice > 0:
                    yield self.sim.timeout(self._partition_notice)
                self._lose("partitioned past lease deadline")
                return
            renewed = yield from self._try_renew()
            if renewed or not self._leading:
                return
            if self.sim.now >= self._deadline:
                self._lose("failed to renew before lease deadline")
                return
            yield self.sim.timeout(self._jittered(self.retry_interval))

    def _try_acquire(self):
        try:
            lease = yield from self.client.get(
                Lease.PLURAL, self.name, namespace=self.namespace)
        except ApiError as exc:
            if exc.reason != "NotFound":
                return False
            now = self.sim.now
            lease = Lease(
                metadata=ObjectMeta(name=self.name,
                                    namespace=self.namespace),
                spec=LeaseSpec(
                    holder_identity=self.identity,
                    lease_duration_seconds=self.lease_duration,
                    acquire_time=now, renew_time=now, lease_transitions=1))
            try:
                created = yield from self.client.create(
                    lease, namespace=self.namespace)
            except ApiError:
                return False
            self._became_leader(created, now)
            return True
        now = self.sim.now
        spec = lease.spec
        if not spec.expired(now):
            # Healthy holder observed: this is a standby's steady-state
            # poll, not a failure — keep retrying at the base interval so
            # the takeover after an expiry is prompt (backoff only grows
            # on API errors and CAS losses).
            self._retry_backoff.reset()
            return False
        spec.holder_identity = self.identity
        spec.lease_duration_seconds = self.lease_duration
        spec.acquire_time = now
        spec.renew_time = now
        spec.lease_transitions = (spec.lease_transitions or 0) + 1
        try:
            updated = yield from self.client.update(lease)
        except ApiError:
            # Conflict: somebody else won the CAS race — back off.
            return False
        self._became_leader(updated, now)
        return True

    def _try_renew(self):
        try:
            lease = yield from self.client.get(
                Lease.PLURAL, self.name, namespace=self.namespace)
        except ApiError:
            return False
        spec = lease.spec
        if (spec.holder_identity != self.identity
                or spec.lease_transitions != self._token):
            self._lose("lease held by another identity")
            return False
        now = self.sim.now
        spec.renew_time = now
        try:
            yield from self.client.update(lease)
        except ApiError:
            return False
        self._deadline = now + self.lease_duration
        self.renewals += 1
        return True

    def _release(self):
        try:
            lease = yield from self.client.get(
                Lease.PLURAL, self.name, namespace=self.namespace)
            if lease.spec.holder_identity != self.identity:
                return
            lease.spec.holder_identity = None
            lease.spec.renew_time = None
            yield from self.client.update(lease)
        except (ApiError, Interrupt):
            pass

    def _became_leader(self, lease, written_now):
        self._leading = True
        self._deadline = written_now + self.lease_duration
        self._token = lease.spec.lease_transitions
        self.acquisitions += 1
        if self.on_started_leading is not None:
            self.on_started_leading(self._token)

    def _lose(self, reason):
        if not self._leading:
            return
        self._leading = False
        self._deadline = float("-inf")
        self.losses += 1
        if self.on_stopped_leading is not None:
            self.on_stopped_leading(reason)
