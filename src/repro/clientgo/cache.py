"""The read-only object cache (client-go "Indexer"/thread-safe store).

Reconcilers read object state from here instead of querying the apiserver
(paper Fig. 3 / Fig. 5); the caches also dominate the syncer's memory
footprint, so the cache tracks an estimated byte size per object.
"""


def estimate_object_bytes(obj, factor, overhead):
    """Rough in-memory size of a decoded API object.

    Proportional to the serialized size — like real informer caches, where
    a Pod with managed fields occupies tens of kilobytes.
    """
    return int(len(str(obj.to_dict())) * factor) + overhead


class ObjectCache:
    """Keyed store of the latest observed object versions."""

    def __init__(self, size_factor=0.0, size_overhead=0):
        self._items = {}
        self._sizes = {}
        self._size_factor = size_factor
        self._size_overhead = size_overhead
        self.total_bytes = 0

    def upsert(self, obj):
        key = obj.key
        if self._size_factor:
            new_size = estimate_object_bytes(obj, self._size_factor,
                                             self._size_overhead)
            self.total_bytes += new_size - self._sizes.get(key, 0)
            self._sizes[key] = new_size
        self._items[key] = obj

    def delete(self, key):
        if key in self._items:
            del self._items[key]
            self.total_bytes -= self._sizes.pop(key, 0)

    def get(self, key):
        return self._items.get(key)

    def get_copy(self, key):
        """A deep copy safe to mutate (reconcilers must not edit the cache)."""
        obj = self._items.get(key)
        return obj.copy() if obj is not None else None

    def keys(self):
        return list(self._items)

    def items(self):
        return list(self._items.values())

    def by_namespace(self, namespace):
        return [obj for obj in self._items.values()
                if obj.metadata.namespace == namespace]

    def select(self, predicate):
        return [obj for obj in self._items.values() if predicate(obj)]

    def replace(self, objs):
        """Atomically replace contents (reflector relist)."""
        self._items.clear()
        self._sizes.clear()
        self.total_bytes = 0
        for obj in objs:
            self.upsert(obj)

    def __len__(self):
        return len(self._items)

    def __contains__(self, key):
        return key in self._items
