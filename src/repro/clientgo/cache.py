"""The read-only object cache (client-go "Indexer"/thread-safe store).

Reconcilers read object state from here instead of querying the apiserver
(paper Fig. 3 / Fig. 5); the caches also dominate the syncer's memory
footprint, so the cache tracks an estimated byte size per object.

Beyond the plain keyed store, the cache maintains **secondary indexes**
(client-go's ``Indexer``): an index is a named function mapping an object
to a list of hashable values, and the cache keeps value -> key postings
up to date on every ``upsert``/``delete``/``replace``.  Two indexes are
built in — ``namespace`` and ``labels`` (one ``"key=value"`` posting per
label pair) — and callers can register more (the syncer adds a tenant
index over its annotation, see ``core/syncer``).  Index lookups replace
the linear ``select()``/``items()`` scans on the syncer hot path; the
``gets``/``index_lookups``/``full_scans`` counters let tests pin the
access pattern of a code path (no accidental O(n) regressions).
"""

INDEX_NAMESPACE = "namespace"
INDEX_LABELS = "labels"


def estimate_object_bytes(obj, factor, overhead):
    """Rough in-memory size of a decoded API object.

    Proportional to the serialized size — like real informer caches, where
    a Pod with managed fields occupies tens of kilobytes.
    """
    return int(len(str(obj.to_dict())) * factor) + overhead


def _namespace_index(obj):
    namespace = obj.metadata.namespace
    return (namespace,) if namespace else ()


def _labels_index(obj):
    labels = obj.metadata.labels or {}
    return tuple(f"{key}={value}" for key, value in labels.items())


class ObjectCache:
    """Keyed store of the latest observed object versions, with indexes."""

    def __init__(self, size_factor=0.0, size_overhead=0):
        self._items = {}
        self._sizes = {}
        self._size_factor = size_factor
        self._size_overhead = size_overhead
        self.total_bytes = 0
        # name -> index function (obj -> iterable of hashable values)
        self._index_funcs = {}
        # name -> {value -> set(key)}
        self._postings = {}
        # key -> {name -> tuple(values)}  (so deletes need no recompute)
        self._indexed_values = {}
        # Access-pattern instrumentation (see module docstring).
        self.gets = 0
        self.index_lookups = 0
        self.full_scans = 0
        # Optional race-detector probe (repro.analysis.racedetect); the
        # cache has no sim reference, so the owner attaches it.
        self._race_probe = None
        self.add_index(INDEX_NAMESPACE, _namespace_index)
        self.add_index(INDEX_LABELS, _labels_index)

    def set_race_probe(self, probe):
        self._race_probe = probe

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------

    def add_index(self, name, func):
        """Register a secondary index (idempotent; backfills existing items)."""
        if name in self._index_funcs:
            return
        self._index_funcs[name] = func
        self._postings[name] = {}
        for key, obj in self._items.items():
            self._index_one(name, func, key, obj)

    def _index_one(self, name, func, key, obj):
        values = tuple(func(obj))
        if values:
            postings = self._postings[name]
            for value in values:
                postings.setdefault(value, set()).add(key)
            self._indexed_values.setdefault(key, {})[name] = values

    def _index_insert(self, key, obj):
        for name, func in self._index_funcs.items():
            self._index_one(name, func, key, obj)

    def _index_drop(self, key):
        by_name = self._indexed_values.pop(key, None)
        if not by_name:
            return
        for name, values in by_name.items():
            postings = self._postings[name]
            for value in values:
                bucket = postings.get(value)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del postings[value]

    # ------------------------------------------------------------------
    # Store operations
    # ------------------------------------------------------------------

    def upsert(self, obj):
        key = obj.key
        if self._race_probe is not None:
            self._race_probe.write(key)
        if self._size_factor:
            new_size = estimate_object_bytes(obj, self._size_factor,
                                             self._size_overhead)
            self.total_bytes += new_size - self._sizes.get(key, 0)
            self._sizes[key] = new_size
        if key in self._items:
            self._index_drop(key)
        self._items[key] = obj
        self._index_insert(key, obj)

    def delete(self, key):
        if self._race_probe is not None:
            self._race_probe.write(key)
        if key in self._items:
            del self._items[key]
            self.total_bytes -= self._sizes.pop(key, 0)
            self._index_drop(key)

    def get(self, key):
        self.gets += 1
        if self._race_probe is not None:
            self._race_probe.read(key)
        return self._items.get(key)

    def get_copy(self, key):
        """A deep copy safe to mutate (reconcilers must not edit the cache)."""
        self.gets += 1
        if self._race_probe is not None:
            self._race_probe.read(key)
        obj = self._items.get(key)
        return obj.copy() if obj is not None else None

    def keys(self):
        return list(self._items)

    def items(self):
        self.full_scans += 1
        if self._race_probe is not None:
            self._race_probe.scan()
        return list(self._items.values())

    def select(self, predicate):
        """Brute-force filter over every cached object (O(n))."""
        self.full_scans += 1
        if self._race_probe is not None:
            self._race_probe.scan()
        return [obj for obj in self._items.values() if predicate(obj)]

    def replace(self, objs):
        """Atomically replace contents (reflector relist)."""
        self._items.clear()
        self._sizes.clear()
        self.total_bytes = 0
        self._indexed_values.clear()
        for postings in self._postings.values():
            postings.clear()
        for obj in objs:
            self.upsert(obj)

    # ------------------------------------------------------------------
    # Index queries
    # ------------------------------------------------------------------

    def index_keys(self, name, value):
        """Keys indexed under ``value`` (sorted, for determinism)."""
        self.index_lookups += 1
        return sorted(self._postings[name].get(value, ()))

    def by_index(self, name, value):
        """Objects indexed under ``value`` (key-sorted, no copies)."""
        return [self._items[key] for key in self.index_keys(name, value)]

    def by_namespace(self, namespace):
        return self.by_index(INDEX_NAMESPACE, namespace)

    def by_label(self, key, value):
        """Objects carrying the exact label pair ``key=value``."""
        return self.by_index(INDEX_LABELS, f"{key}={value}")

    def select_labels(self, selector_labels, namespace=None):
        """Objects matching every pair of a dict selector.

        Seeds the candidate set from the rarest label-pair posting, then
        confirms the full selector (and namespace) — the standard inverted
        index intersection, instead of a namespace- or cache-wide scan.
        """
        if not selector_labels:
            return []
        self.index_lookups += 1
        postings = self._postings[INDEX_LABELS]
        candidate_keys = None
        for pair_key, pair_value in selector_labels.items():
            bucket = postings.get(f"{pair_key}={pair_value}")
            if not bucket:
                return []
            if candidate_keys is None or len(bucket) < len(candidate_keys):
                candidate_keys = bucket
        matched = []
        for key in sorted(candidate_keys):
            obj = self._items[key]
            if namespace is not None and obj.metadata.namespace != namespace:
                continue
            labels = obj.metadata.labels or {}
            if all(labels.get(k) == v for k, v in selector_labels.items()):
                matched.append(obj)
        return matched

    def __len__(self):
        return len(self._items)

    def __contains__(self, key):
        return key in self._items
