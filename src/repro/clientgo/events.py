"""Event recorder (client-go ``record.EventRecorder``).

Components emit Events about objects; repeated occurrences aggregate
into one Event with an increasing count, as in real Kubernetes.  Events
recorded in the super cluster about tenant objects are synced upward by
the syncer's event reconciler, so tenants can ``kubectl describe`` their
pods and see scheduler/kubelet activity.
"""

from repro.apiserver.errors import ApiError
from repro.objects import Event
from repro.objects.meta import ObjectReference


class EventRecorder:
    """Best-effort, fire-and-forget event emission."""

    def __init__(self, sim, client, component):
        self.sim = sim
        self.client = client
        self.component = component
        self._seen = {}
        self.emitted = 0
        self.dropped = 0

    def event(self, obj, reason, message, event_type="Normal"):
        """Record an event about ``obj`` (spawns a background write)."""
        self.sim.spawn(self._record(obj, reason, message, event_type),
                       name=f"event-{reason}")

    def _record(self, obj, reason, message, event_type):
        key = (obj.uid or obj.key, reason)
        existing = self._seen.get(key)
        try:
            if existing is not None:
                fresh = yield from self.client.get(
                    "events", existing, namespace=obj.namespace)
                fresh.count += 1
                fresh.last_timestamp = self.sim.now
                fresh.message = message
                yield from self.client.update(fresh)
                self.emitted += 1
                return
        except ApiError:
            self._seen.pop(key, None)

        event = Event()
        event.metadata.generate_name = f"{obj.name}."
        event.metadata.namespace = obj.namespace
        event.involved_object = ObjectReference(
            api_version=type(obj).API_VERSION, kind=type(obj).KIND,
            namespace=obj.namespace, name=obj.name, uid=obj.uid)
        event.reason = reason
        event.message = message
        event.type = event_type
        event.count = 1
        event.first_timestamp = self.sim.now
        event.last_timestamp = self.sim.now
        event.source = {"component": self.component}
        try:
            created = yield from self.client.create(event)
            self._seen[key] = created.metadata.name
            self.emitted += 1
        except ApiError:
            self.dropped += 1


class NullRecorder:
    """Disables event emission (used in large-scale stress runs)."""

    emitted = 0
    dropped = 0

    def event(self, obj, reason, message, event_type="Normal"):
        return None
