"""Fair work queue: per-tenant sub-queues + weighted round-robin.

The paper (§III-C) extends the standard client-go worker queue with per
tenant sub-queues and weighted round-robin dispatch so that one greedy
tenant's burst cannot starve regular tenants (evaluated in Fig. 11).

Items are ``(tenant, key)`` pairs.  Dedup semantics match
:class:`~repro.clientgo.workqueue.WorkQueue`: a pending item is not
enqueued twice, and an item re-added while being processed is re-queued
once its worker calls :meth:`done`.

When ``fair=False`` the queue degrades to one shared FIFO — the
configuration used for the Fig. 11(b) comparison.
"""

from collections import defaultdict, deque

from repro.simkernel.events import Event

from .workqueue import ShutDown


class FairWorkQueue:
    """WRR multi-queue with client-go dedup semantics."""

    def __init__(self, sim, name="fair-queue", default_weight=1, fair=True):
        self.sim = sim
        self.name = name
        self.fair = fair
        self.default_weight = default_weight
        self._weights = {}
        self._subqueues = {}
        self._rr_order = []
        self._rr_index = 0
        self._credits = {}
        self._shared = deque()  # used when fair=False
        self._dirty = set()
        self._processing = set()
        self._waiters = deque()
        self._enqueue_times = {}
        self._shutdown = False
        self.added_total = 0
        self.deduped_total = 0
        self.wait_time_by_tenant = defaultdict(float)
        self.dispatched_by_tenant = defaultdict(int)

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------

    def register_tenant(self, tenant, weight=None):
        """Create the tenant's sub-queue (idempotent)."""
        if tenant not in self._subqueues:
            self._subqueues[tenant] = deque()
            self._rr_order.append(tenant)
            self._weights[tenant] = weight or self.default_weight
            self._credits[tenant] = self._weights[tenant]

    def remove_tenant(self, tenant):
        """Drop a tenant's sub-queue (its pending items are discarded)."""
        queue = self._subqueues.pop(tenant, None)
        if queue is None:
            return
        for item in queue:
            self._dirty.discard((tenant, item))
            self._enqueue_times.pop((tenant, item), None)
        self._rr_order.remove(tenant)
        self._weights.pop(tenant, None)
        self._credits.pop(tenant, None)
        if self._rr_index >= len(self._rr_order):
            self._rr_index = 0

    @property
    def tenants(self):
        return list(self._rr_order)

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------

    def __len__(self):
        if self.fair:
            return sum(len(q) for q in self._subqueues.values())
        return len(self._shared)

    def depth(self, tenant):
        if self.fair:
            queue = self._subqueues.get(tenant)
            return len(queue) if queue is not None else 0
        return sum(1 for t, _ in self._shared if t == tenant)

    def add(self, tenant, key):
        """Enqueue ``key`` for ``tenant`` with dedup."""
        if self._shutdown:
            return
        self.register_tenant(tenant)
        item = (tenant, key)
        self.added_total += 1
        if item in self._dirty:
            self.deduped_total += 1
            return
        self._dirty.add(item)
        if item in self._processing:
            return
        self._enqueue_times.setdefault(item, self.sim.now)
        waiter = self._pop_live_waiter()
        if waiter is not None:
            self._dispatch(item, waiter)
            return
        if self.fair:
            self._subqueues[tenant].append(key)
        else:
            self._shared.append(item)

    def get(self):
        """Event resolving to ``(tenant, key, enqueued_at)``."""
        event = Event(self.sim)
        if self._shutdown:
            event.fail(ShutDown(self.name))
            return event
        item = self._pick()
        if item is not None:
            self._dispatch(item, event)
        else:
            self._waiters.append(event)
        return event

    def done(self, tenant, key):
        """Worker finished the item; re-queue if it went dirty meanwhile.

        Safe to call after :meth:`shutdown` or :meth:`remove_tenant` — a
        late ``done()`` must never raise nor resurrect a removed tenant's
        sub-queue.
        """
        item = (tenant, key)
        self._processing.discard(item)
        if item in self._dirty:
            self._dirty.discard(item)
            if not self._shutdown and (not self.fair
                                       or tenant in self._subqueues):
                self.add(tenant, key)

    def shutdown(self):
        """Wake every blocked ``get()`` waiter with :class:`ShutDown`."""
        self._shutdown = True
        while self._waiters:
            event = self._waiters.popleft()
            if event.callbacks:
                event.fail(ShutDown(self.name))

    def _pop_live_waiter(self):
        """Next waiter event that still has a process listening; a worker
        interrupted while blocked in ``get()`` leaves a dead event behind,
        and dispatching to it would strand the item as processing."""
        while self._waiters:
            event = self._waiters.popleft()
            if event.callbacks:
                return event
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _dispatch(self, item, event):
        tenant, key = item
        self._dirty.discard(item)
        self._processing.add(item)
        queued_at = self._enqueue_times.pop(item, self.sim.now)
        self.wait_time_by_tenant[tenant] += self.sim.now - queued_at
        self.dispatched_by_tenant[tenant] += 1
        event.succeed((tenant, key, queued_at))

    def _pick(self):
        """Weighted round-robin selection (O(n) in tenants, as the paper
        notes; with equal weights it degenerates to plain round-robin)."""
        if not self.fair:
            if self._shared:
                return self._shared.popleft()
            return None
        order = self._rr_order
        if not order or not any(self._subqueues[t] for t in order):
            return None
        attempts = 0
        while True:
            if self._rr_index >= len(order):
                self._rr_index = 0
            tenant = order[self._rr_index]
            queue = self._subqueues[tenant]
            if queue and self._credits[tenant] > 0:
                self._credits[tenant] -= 1
                if self._credits[tenant] == 0:
                    # Weight exhausted for this round: move to the next
                    # tenant (plain round-robin when all weights are 1).
                    self._rr_index += 1
                return (tenant, queue.popleft())
            self._rr_index += 1
            attempts += 1
            if attempts >= len(order):
                # Full pass without service: refill every credit (new
                # WRR round) and scan again — an item is known to exist.
                for t in order:
                    self._credits[t] = self._weights[t]
                attempts = 0

    def stats(self):
        return {
            "depth": len(self),
            "added": self.added_total,
            "deduped": self.deduped_total,
            "tenants": len(self._rr_order),
            "processing": len(self._processing),
        }
