"""Fair work queue: per-tenant sub-queues + weighted round-robin.

The paper (§III-C) extends the standard client-go worker queue with per
tenant sub-queues and weighted round-robin dispatch so that one greedy
tenant's burst cannot starve regular tenants (evaluated in Fig. 11).

Items are ``(tenant, key)`` pairs.  Dedup semantics match
:class:`~repro.clientgo.workqueue.WorkQueue`: a pending item is not
enqueued twice, and an item re-added while being processed is re-queued
once its worker calls :meth:`done`.

When ``fair=False`` the queue degrades to one shared FIFO — the
configuration used for the Fig. 11(b) comparison.
"""

from collections import defaultdict, deque

from repro.simkernel.events import Event
from repro.simkernel.parallel import shard_hash
from repro.telemetry import telemetry_of

from .workqueue import ShutDown

__all__ = ["FairWorkQueue", "ShardedFairWorkQueue", "shard_hash"]


class FairWorkQueue:
    """WRR multi-queue with client-go dedup semantics."""

    def __init__(self, sim, name="fair-queue", default_weight=1, fair=True):
        self.sim = sim
        self.name = name
        self.fair = fair
        self.default_weight = default_weight
        self._weights = {}
        self._subqueues = {}
        self._rr_order = []
        self._rr_index = 0
        self._credits = {}
        self._shared = deque()  # used when fair=False
        self._dirty = set()
        self._processing = set()
        self._waiters = deque()
        self._enqueue_times = {}
        # Producer stamps per queued item for the race detector (see
        # WorkQueue._item_stamps).
        self._item_stamps = {}
        self._shutdown = False
        self.added_total = 0
        self.deduped_total = 0
        self.wait_time_by_tenant = defaultdict(float)
        self.dispatched_by_tenant = defaultdict(int)
        telemetry = telemetry_of(sim)
        self._adds_counter = telemetry.counter(
            "fairqueue_adds_total", "fair-queue adds (dedup hits included)",
            labels=("queue",)).labels(queue=name)
        self._deduped_counter = telemetry.counter(
            "fairqueue_deduped_total", "adds absorbed by dedup",
            labels=("queue",)).labels(queue=name)
        self._dispatch_counter = telemetry.counter(
            "fairqueue_dispatch_total", "items dispatched per tenant",
            labels=("queue", "tenant"))
        self._wait_hist = telemetry.histogram(
            "fairqueue_wait_seconds", "time queued before dispatch",
            labels=("queue",)).labels(queue=name)

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------

    def register_tenant(self, tenant, weight=None):
        """Create the tenant's sub-queue (idempotent).

        ``weight=None`` means the queue default; an explicit weight must
        be positive — a zero-weight tenant would never be served and a
        negative one would wedge the WRR credit loop.
        """
        if weight is not None and weight <= 0:
            raise ValueError(
                f"{self.name}: tenant weight must be positive, "
                f"got {weight!r} for {tenant!r}")
        if tenant not in self._subqueues:
            self._subqueues[tenant] = deque()
            self._rr_order.append(tenant)
            self._weights[tenant] = (weight if weight is not None
                                     else self.default_weight)
            self._credits[tenant] = self._weights[tenant]

    def remove_tenant(self, tenant):
        """Drop a tenant's sub-queue (its pending items are discarded)."""
        queue = self._subqueues.pop(tenant, None)
        if queue is None:
            return
        for item in queue:
            self._dirty.discard((tenant, item))
            self._enqueue_times.pop((tenant, item), None)
            self._item_stamps.pop((tenant, item), None)
        index = self._rr_order.index(tenant)
        del self._rr_order[index]
        if index < self._rr_index:
            # Removing an entry before the cursor shifts every later
            # tenant left one slot; without pulling the cursor back it
            # lands one past the tenant whose turn is next, silently
            # skipping that tenant's WRR turn.
            self._rr_index -= 1
        self._weights.pop(tenant, None)
        self._credits.pop(tenant, None)
        if self._rr_index >= len(self._rr_order):
            self._rr_index = 0

    @property
    def tenants(self):
        return list(self._rr_order)

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------

    def __len__(self):
        if self.fair:
            return sum(len(q) for q in self._subqueues.values())
        return len(self._shared)

    def depth(self, tenant):
        if self.fair:
            queue = self._subqueues.get(tenant)
            return len(queue) if queue is not None else 0
        return sum(1 for t, _ in self._shared if t == tenant)

    def add(self, tenant, key):
        """Enqueue ``key`` for ``tenant`` with dedup."""
        if self._shutdown:
            return
        self.register_tenant(tenant)
        item = (tenant, key)
        self.added_total += 1
        self._adds_counter.inc()
        detector = self.sim.race_detector
        if detector is not None:
            self._item_stamps[item] = detector.merge_stamps(
                self._item_stamps.get(item), detector.current_stamp())
        if item in self._dirty:
            self.deduped_total += 1
            self._deduped_counter.inc()
            return
        self._dirty.add(item)
        if item in self._processing:
            return
        self._enqueue_times.setdefault(item, self.sim.now)
        waiter = self._pop_live_waiter()
        if waiter is not None:
            self._dispatch(item, waiter)
            return
        if self.fair:
            self._subqueues[tenant].append(key)
        else:
            self._shared.append(item)

    def get(self):
        """Event resolving to ``(tenant, key, enqueued_at)``."""
        event = Event(self.sim)
        if self._shutdown:
            event.fail(ShutDown(self.name))
            return event
        item = self._pick()
        if item is not None:
            self._dispatch(item, event)
        else:
            self._waiters.append(event)
        return event

    def done(self, tenant, key):
        """Worker finished the item; re-queue if it went dirty meanwhile.

        Safe to call after :meth:`shutdown` or :meth:`remove_tenant` — a
        late ``done()`` must never raise nor resurrect a removed tenant's
        sub-queue.
        """
        item = (tenant, key)
        self._processing.discard(item)
        if item in self._dirty:
            self._dirty.discard(item)
            if not self._shutdown and (not self.fair
                                       or tenant in self._subqueues):
                self.add(tenant, key)

    def shutdown(self):
        """Wake every blocked ``get()`` waiter with :class:`ShutDown`."""
        self._shutdown = True
        while self._waiters:
            event = self._waiters.popleft()
            if event.callbacks:
                event.fail(ShutDown(self.name))

    def _pop_live_waiter(self):
        """Next waiter event that still has a process listening; a worker
        interrupted while blocked in ``get()`` leaves a dead event behind,
        and dispatching to it would strand the item as processing."""
        while self._waiters:
            event = self._waiters.popleft()
            if event.callbacks:
                return event
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _dispatch(self, item, event):
        tenant, key = item
        stamp = self._item_stamps.pop(item, None)
        if stamp is not None:
            event._race_acc = stamp
        self._dirty.discard(item)
        self._processing.add(item)
        queued_at = self._enqueue_times.pop(item, self.sim.now)
        self.wait_time_by_tenant[tenant] += self.sim.now - queued_at
        self.dispatched_by_tenant[tenant] += 1
        self._dispatch_counter.labels(queue=self.name, tenant=tenant).inc()
        self._wait_hist.observe(self.sim.now - queued_at)
        event.succeed((tenant, key, queued_at))

    def _pick(self):
        """Weighted round-robin selection (O(n) in tenants, as the paper
        notes; with equal weights it degenerates to plain round-robin)."""
        if not self.fair:
            if self._shared:
                return self._shared.popleft()
            return None
        order = self._rr_order
        if not order or not any(self._subqueues[t] for t in order):
            return None
        attempts = 0
        while True:
            if self._rr_index >= len(order):
                self._rr_index = 0
            tenant = order[self._rr_index]
            queue = self._subqueues[tenant]
            if queue and self._credits[tenant] > 0:
                self._credits[tenant] -= 1
                if self._credits[tenant] == 0:
                    # Weight exhausted for this round: move to the next
                    # tenant (plain round-robin when all weights are 1).
                    self._rr_index += 1
                return (tenant, queue.popleft())
            self._rr_index += 1
            attempts += 1
            if attempts >= len(order):
                # Full pass without service: refill every credit (new
                # WRR round) and scan again — an item is known to exist.
                for t in order:
                    self._credits[t] = self._weights[t]
                attempts = 0

    def drain_pending(self, tenant):
        """Remove and return the tenant's pending keys (rebalance support).

        Items currently being processed are untouched — their ``done()``
        is still owed to this queue.  The returned keys are no longer
        dirty here, so re-adding them to another shard is not a dedup hit.
        """
        drained = []
        if self.fair:
            queue = self._subqueues.get(tenant)
            if queue:
                drained = list(queue)
                queue.clear()
        else:
            kept = deque()
            for item_tenant, key in self._shared:
                if item_tenant == tenant:
                    drained.append(key)
                else:
                    kept.append((item_tenant, key))
            self._shared = kept
        detector = self.sim.race_detector
        for key in drained:
            self._dirty.discard((tenant, key))
            self._enqueue_times.pop((tenant, key), None)
            stamp = self._item_stamps.pop((tenant, key), None)
            if detector is not None and stamp is not None:
                # The rebalancer re-adds these keys elsewhere; absorbing
                # the producers' stamps keeps them ordered before the
                # new shard's workers.
                detector.absorb(stamp)
        return drained

    def stats(self):
        return {
            "depth": len(self),
            "added": self.added_total,
            "deduped": self.deduped_total,
            "tenants": len(self._rr_order),
            "processing": len(self._processing),
        }


# shard_hash moved to repro.simkernel.parallel so the parallel backend's
# partitioner and this queue's shard routing are literally the same
# function; re-exported here for compatibility.


class ShardedFairWorkQueue:
    """N fair work queues with stable per-tenant shard routing.

    The single :class:`FairWorkQueue` serializes every dispatch through
    one critical section — the contention the paper blames for the ~21%
    throughput degradation.  Sharding splits tenants across ``shards``
    independent sub-queues (stable ``crc32(tenant) % shards`` routing) so
    each shard owns its own dispatch path and lock, while weighted
    fairness is preserved: a tenant's items always land on one shard,
    whose :class:`FairWorkQueue` runs WRR over exactly the tenants it
    hosts.  Dedup stays exact because a ``(tenant, key)`` item can only
    ever live on its tenant's shard.

    ``deactivate_shard`` rebalances a shard whose workers died (chaos
    worker-kill): its tenants are re-routed among the remaining active
    shards and their pending items move with them.

    With ``shards=1`` this is byte-for-byte the unsharded behavior — the
    configuration every paper-reproduction benchmark uses.
    """

    def __init__(self, sim, name="fair-queue", shards=1, default_weight=1,
                 fair=True):
        self.sim = sim
        self.name = name
        self.fair = fair
        self.default_weight = default_weight
        self.num_shards = max(1, int(shards))
        self.shards = [
            FairWorkQueue(sim, name=f"{name}-shard{i}",
                          default_weight=default_weight, fair=fair)
            for i in range(self.num_shards)
        ]
        self._active = list(range(self.num_shards))
        self._tenant_shard = {}
        self._tenant_weight = {}
        self._shutdown = False
        self.rebalances = 0

    # ------------------------------------------------------------------
    # Tenant routing
    # ------------------------------------------------------------------

    def shard_of(self, tenant):
        """The shard index serving ``tenant`` (assigns on first use)."""
        shard = self._tenant_shard.get(tenant)
        if shard is None:
            shard = self._active[shard_hash(tenant) % len(self._active)]
            self._tenant_shard[tenant] = shard
            self.shards[shard].register_tenant(
                tenant, weight=self._tenant_weight.get(tenant))
        return shard

    def register_tenant(self, tenant, weight=None):
        if weight is not None and weight <= 0:
            raise ValueError(
                f"{self.name}: tenant weight must be positive, "
                f"got {weight!r} for {tenant!r}")
        self._tenant_weight[tenant] = (weight if weight is not None
                                       else self.default_weight)
        self.shard_of(tenant)

    def remove_tenant(self, tenant):
        shard = self._tenant_shard.pop(tenant, None)
        self._tenant_weight.pop(tenant, None)
        if shard is not None:
            self.shards[shard].remove_tenant(tenant)

    @property
    def tenants(self):
        return sorted(self._tenant_shard)

    # ------------------------------------------------------------------
    # Queue operations (FairWorkQueue-compatible, plus a shard for get)
    # ------------------------------------------------------------------

    def add(self, tenant, key):
        if self._shutdown:
            return
        self.shards[self.shard_of(tenant)].add(tenant, key)

    def get(self, shard=0):
        """Event resolving to ``(tenant, key, enqueued_at)`` from a shard."""
        return self.shards[shard % self.num_shards].get()

    def done(self, tenant, key):
        shard = self._tenant_shard.get(tenant)
        if shard is not None:
            self.shards[shard].done(tenant, key)
            return
        # Late done() after remove_tenant/rebalance: every shard treats
        # an unknown item as a no-op, so sweep them all.
        for queue in self.shards:
            queue.done(tenant, key)

    def shutdown(self):
        self._shutdown = True
        for queue in self.shards:
            queue.shutdown()

    # ------------------------------------------------------------------
    # Rebalance
    # ------------------------------------------------------------------

    def deactivate_shard(self, shard):
        """Re-route a dead shard's tenants (and pending items) elsewhere."""
        if shard not in self._active or len(self._active) <= 1:
            return
        self._active.remove(shard)
        queue = self.shards[shard]
        for tenant in list(queue.tenants):
            pending = queue.drain_pending(tenant)
            queue.remove_tenant(tenant)
            del self._tenant_shard[tenant]
            self.shard_of(tenant)  # re-route among remaining active shards
            for key in pending:
                self.add(tenant, key)
        self.rebalances += 1

    def activate_shard(self, shard):
        """Bring a shard back into the routing pool (new tenants only)."""
        if shard not in self._active and 0 <= shard < self.num_shards:
            self._active.append(shard)
            self._active.sort()

    @property
    def active_shards(self):
        return list(self._active)

    # ------------------------------------------------------------------
    # Introspection (aggregated over shards)
    # ------------------------------------------------------------------

    def __len__(self):
        return sum(len(queue) for queue in self.shards)

    def depth(self, tenant):
        shard = self._tenant_shard.get(tenant)
        return self.shards[shard].depth(tenant) if shard is not None else 0

    @property
    def added_total(self):
        return sum(queue.added_total for queue in self.shards)

    @property
    def deduped_total(self):
        return sum(queue.deduped_total for queue in self.shards)

    @property
    def wait_time_by_tenant(self):
        merged = defaultdict(float)
        for queue in self.shards:
            for tenant, wait in queue.wait_time_by_tenant.items():
                merged[tenant] += wait
        return merged

    @property
    def dispatched_by_tenant(self):
        merged = defaultdict(int)
        for queue in self.shards:
            for tenant, count in queue.dispatched_by_tenant.items():
                merged[tenant] += count
        return merged

    def stats(self):
        return {
            "depth": len(self),
            "added": self.added_total,
            "deduped": self.deduped_total,
            "tenants": len(self._tenant_shard),
            "processing": sum(len(q._processing) for q in self.shards),
            "shards": self.num_shards,
            "active_shards": len(self._active),
            "rebalances": self.rebalances,
            "depth_by_shard": [len(q) for q in self.shards],
        }
