"""Typed API client with client-side throttling and retries (client-go).

Every tenant control plane enables "Kubernetes built-in rate limit
control" (paper §III-C): this is the client-side QPS/burst token bucket
that smooths bursts into the apiserver, plus retry-with-backoff on
retryable API errors and on write conflicts where safe.
"""

from repro.apiserver.errors import Conflict, is_retryable
from repro.apiserver.ratelimit import TokenBucket


class Kubeconfig:
    """Access credential + server handle for one control plane."""

    __slots__ = ("api", "credential", "cluster_name")

    def __init__(self, api, credential, cluster_name=None):
        self.api = api
        self.credential = credential
        self.cluster_name = cluster_name or api.name

    def client(self, sim, **kwargs):
        return Client(sim, self.api, self.credential, **kwargs)


class Client:
    """A throttled, retrying client bound to one credential."""

    def __init__(self, sim, api, credential, qps=50.0, burst=100,
                 user_agent="client", max_retries=4, cpu_account=None):
        self.sim = sim
        self.api = api
        self.credential = credential
        self.user_agent = user_agent
        self.max_retries = max_retries
        self.cpu_account = cpu_account
        self._bucket = TokenBucket(sim, qps, burst,
                                   name=f"{user_agent}-qps")
        # Chaos hook (see repro.chaos.faults.NetworkPartition): when set,
        # requests from *this client only* can be failed, modelling a
        # network partition between this client and its apiserver while
        # the apiserver itself stays up for everyone else.
        self.fault_injector = None
        # Topology hook (see repro.network.link.NetworkLink): when set,
        # every request from this client traverses a simulated WAN/edge
        # uplink — added latency plus probabilistic loss surfaced as a
        # retryable ServerUnavailable.
        self.link = None
        # Watch streams this client opened, so a partition can sever them.
        self._watch_streams = []

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _call(self, op, *args, retry_conflicts=False, **kwargs):
        """Coroutine: throttle, invoke, retry retryable failures."""
        attempt = 0
        while True:
            yield from self._bucket.acquire()
            if self.cpu_account is not None:
                self.cpu_account.charge(0.00005, activity="marshal")
            try:
                if self.fault_injector is not None:
                    self.fault_injector.check()
                if self.link is not None:
                    yield from self.link.traverse()
                result = yield from op(self.credential, *args, **kwargs)
                return result
            except Exception as exc:  # noqa: BLE001 - classified below
                retryable = is_retryable(exc) or (
                    retry_conflicts and isinstance(exc, Conflict))
                attempt += 1
                if not retryable or attempt > self.max_retries:
                    raise
                hint = getattr(exc, "retry_after", None)
                if hint:
                    # A server-provided Retry-After (APF shedding) wins
                    # over the exponential schedule; one-sided jitter
                    # decorrelates the herd that was shed together.
                    backoff = hint * (1.0 + 0.5 * self.sim.rng.random())
                else:
                    backoff = min(0.1 * (2 ** (attempt - 1)), 2.0)
                yield self.sim.timeout(backoff)

    # ------------------------------------------------------------------
    # Typed operations
    # ------------------------------------------------------------------

    def create(self, obj, namespace=None):
        return self._call(self.api.create, obj, namespace=namespace)

    def get(self, plural, name, namespace=None):
        return self._call(self.api.get, plural, name, namespace=namespace)

    def list(self, plural, namespace=None, label_selector=None,
             field_selector=None):
        return self._call(self.api.list, plural, namespace=namespace,
                          label_selector=label_selector,
                          field_selector=field_selector)

    def update(self, obj):
        return self._call(self.api.update, obj)

    def update_status(self, obj):
        return self._call(self.api.update, obj, subresource="status")

    def patch(self, plural, name, patch, namespace=None):
        return self._call(self.api.patch, plural, name, patch,
                          namespace=namespace, retry_conflicts=True)

    def delete(self, plural, name, namespace=None):
        return self._call(self.api.delete, plural, name, namespace=namespace)

    def transaction(self, ops, fencing=None):
        """Batch of write ops as one request (see APIServer.transaction).

        One token-bucket acquire and one request round trip for the whole
        batch; per-op API errors come back in the result list rather than
        raising.  ``fencing`` is the optional (domain, token) guard an
        HA leader stamps on its downward writes.
        """
        return self._call(self.api.transaction, ops, fencing=fencing)

    def bind_pod(self, name, namespace, node_name):
        return self._call(self.api.bind_pod, name, namespace, node_name)

    def watch(self, plural, namespace=None, from_revision=None,
              label_selector=None, field_selector=None):
        """Open a watch (synchronous; server-side registration)."""
        if self.fault_injector is not None:
            self.fault_injector.check()
        if self.link is not None:
            self.link.check()
        stream = self.api.watch(self.credential, plural, namespace=namespace,
                                from_revision=from_revision,
                                label_selector=label_selector,
                                field_selector=field_selector)
        self._watch_streams = [s for s in self._watch_streams if not s.closed]
        self._watch_streams.append(stream)
        return stream

    def sever_watches(self):
        """Close every watch stream this client holds open (used by the
        partition fault: an established stream dies with the link)."""
        streams, self._watch_streams = self._watch_streams, []
        for stream in streams:
            if not stream.closed:
                stream.stop()
