"""One jittered exponential backoff, shared by every retry loop.

Before this helper existed the repo carried three hand-rolled copies of
the same policy — the reflector's relist backoff, the rate-limiting work
queue's per-item retry delay, and the syncer watchdog's crash-loop
backoff — each with its own exponent cap and jitter convention.  They
all collapse onto :class:`JitteredBackoff`, and new clients (the leader
elector's acquire/renew retries) reuse it instead of adding a fourth.

All randomness comes from the RNG handed in (normally ``sim.rng``), so
delays stay deterministic per simulation seed.  Jitter is multiplicative
and one-sided: a computed delay ``d`` becomes ``d * (1 + jitter * U)``
with ``U ~ Uniform[0, 1)``, which decorrelates retry storms after a
shared failure without ever retrying *earlier* than the base policy.
"""


class JitteredBackoff:
    """Capped exponential backoff with deterministic, seeded jitter.

    Stateless use: ``delay(failures)`` maps a failure count to a delay
    (the work queue tracks failures per item).  Stateful use: ``next()``
    returns the delay for the current streak and advances it; ``reset()``
    clears the streak after a success.
    """

    __slots__ = ("rng", "base", "maximum", "jitter", "max_exponent",
                 "_failures")

    def __init__(self, rng, base, maximum, jitter=0.5, max_exponent=32):
        self.rng = rng
        self.base = base
        self.maximum = maximum
        self.jitter = jitter
        # Cap the exponent so 2**n can't overflow into silly floats long
        # after the delay has saturated at ``maximum`` anyway.
        self.max_exponent = max_exponent
        self._failures = 0

    @property
    def failures(self):
        return self._failures

    def delay(self, failures):
        """The (jittered, capped) delay for the given failure streak."""
        exponent = min(failures, self.max_exponent)
        delay = min(self.base * (2 ** exponent), self.maximum)
        if self.jitter:
            delay *= 1.0 + self.jitter * self.rng.random()
        return delay

    def next(self):
        """Delay for the current streak, then lengthen the streak."""
        delay = self.delay(self._failures)
        self._failures += 1
        return delay

    def reset(self):
        self._failures = 0
