"""Shared informer: reflector + cache + fan-out event handlers.

Controllers register add/update/delete handlers; the informer maintains
the read-only cache that reconcilers consult instead of hitting the
apiserver (paper Fig. 3 and Fig. 5).
"""

from repro.telemetry import telemetry_of

from .cache import ObjectCache
from .reflector import ADDED, DELETED, MODIFIED, Reflector


class EventHandlers:
    """One subscriber's callbacks (all optional)."""

    __slots__ = ("on_add", "on_update", "on_delete")

    def __init__(self, on_add=None, on_update=None, on_delete=None):
        self.on_add = on_add
        self.on_update = on_update
        self.on_delete = on_delete


class SharedInformer:
    """Cache + handler fan-out for a single resource type."""

    def __init__(self, sim, client, plural, namespace=None,
                 label_selector=None, field_selector=None, size_factor=0.0,
                 size_overhead=0, handler_cost=0.0, cpu_account=None):
        self.sim = sim
        self.plural = plural
        self.cache = ObjectCache(size_factor=size_factor,
                                 size_overhead=size_overhead)
        detector = getattr(sim, "race_detector", None)
        if detector is not None:
            self.cache.set_race_probe(
                detector.cache_probe(f"cache:{plural}"))
        self._handlers = []
        self._handler_cost = handler_cost
        self._cpu_account = cpu_account
        self.reflector = Reflector(sim, client, plural, self,
                                   namespace=namespace,
                                   label_selector=label_selector,
                                   field_selector=field_selector)
        self.events_seen = 0
        self._events_counter = telemetry_of(sim).counter(
            "informer_events_total", "watch events seen by informers",
            labels=("resource",)).labels(resource=plural)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        return self.reflector.start()

    def stop(self):
        self.reflector.stop()

    @property
    def has_synced(self):
        return self.reflector.has_synced

    def add_handlers(self, on_add=None, on_update=None, on_delete=None):
        self._handlers.append(EventHandlers(on_add, on_update, on_delete))

    # ------------------------------------------------------------------
    # Reflector delegate interface
    # ------------------------------------------------------------------

    def on_replace(self, objs):
        old_keys = set(self.cache.keys())
        new_keys = set()
        for obj in objs:
            new_keys.add(obj.key)
            existed = obj.key in self.cache
            old = self.cache.get(obj.key)
            self.cache.upsert(obj)
            if existed:
                self._fanout("update", old, obj)
            else:
                self._fanout("add", None, obj)
        # sorted(): the leftover-key set iterates in hash order, which
        # for string keys varies with PYTHONHASHSEED across processes —
        # delete fan-out order must not (linter rule D003).
        for key in sorted(old_keys - new_keys):
            old = self.cache.get(key)
            self.cache.delete(key)
            self._fanout("delete", None, old)

    def on_event(self, kind, obj):
        self.events_seen += 1
        self._events_counter.inc()
        self._charge()
        if kind == ADDED:
            self.cache.upsert(obj)
            self._fanout("add", None, obj)
        elif kind == MODIFIED:
            old = self.cache.get(obj.key)
            self.cache.upsert(obj)
            if old is None:
                # First sight of this object (e.g. a field-selector watch
                # where the object started matching on an update): an add
                # from this watcher's perspective, as in real client-go.
                self._fanout("add", None, obj)
            else:
                self._fanout("update", old, obj)
        elif kind == DELETED:
            existed = obj.key in self.cache
            self.cache.delete(obj.key)
            if existed:
                self._fanout("delete", None, obj)

    def _charge(self):
        if self._cpu_account is not None and self._handler_cost:
            self._cpu_account.charge(self._handler_cost, activity="informer")

    def _fanout(self, kind, old, new):
        for handlers in self._handlers:
            if kind == "add" and handlers.on_add:
                handlers.on_add(new)
            elif kind == "update" and handlers.on_update:
                handlers.on_update(old, new)
            elif kind == "delete" and handlers.on_delete:
                handlers.on_delete(new)


class InformerFactory:
    """Creates and tracks one informer per resource for a client."""

    def __init__(self, sim, client, size_factor=0.0, size_overhead=0,
                 handler_cost=0.0, cpu_account=None):
        self.sim = sim
        self.client = client
        self._size_factor = size_factor
        self._size_overhead = size_overhead
        self._handler_cost = handler_cost
        self._cpu_account = cpu_account
        self.informers = {}

    def informer(self, plural, namespace=None, field_selector=None):
        key = (plural, namespace,
               tuple(sorted((field_selector or {}).items())))
        if key not in self.informers:
            self.informers[key] = SharedInformer(
                self.sim, self.client, plural, namespace=namespace,
                field_selector=field_selector,
                size_factor=self._size_factor,
                size_overhead=self._size_overhead,
                handler_cost=self._handler_cost,
                cpu_account=self._cpu_account)
        return self.informers[key]

    def start_all(self):
        for informer in self.informers.values():
            if informer.reflector._process is None:
                informer.start()

    def stop_all(self):
        for informer in self.informers.values():
            informer.stop()

    def wait_for_sync(self):
        """Coroutine: poll until every informer has listed once."""
        while not all(inf.has_synced for inf in self.informers.values()):
            yield self.sim.timeout(0.01)

    @property
    def total_cache_bytes(self):
        return sum(inf.cache.total_bytes for inf in self.informers.values())
