"""VirtualClusterEnv: one-call assembly of the whole system.

This is the library's main entry point: it builds a super cluster (with
virtual-kubelet nodes for control-plane experiments and/or real nodes
with Kata + enhanced kubeproxy for data-plane experiments), the tenant
operator, the centralized syncer, and per-node vn-agents, and offers
convenience coroutines for creating tenants and workloads.

Typical use::

    env = VirtualClusterEnv(num_virtual_nodes=100)
    env.bootstrap()
    tenant = env.run_coroutine(env.create_tenant("acme"))
    pod = env.run_coroutine(tenant.create_pod("web-1"))
    env.run_until_pods_ready(tenant, ["default/web-1"])
"""

from repro.apiserver.errors import ApiError
from repro.clientgo import InformerFactory
from repro.config import DEFAULT_CONFIG
from repro.kubelet import Kubelet
from repro.kubelet.runtimes.kata import KataRuntime
from repro.kubelet.runtimes.runc import RuncRuntime
from repro.kubeproxy import EnhancedKubeProxy
from repro.network import NetworkStack, Vpc
from repro.objects import make_namespace, make_node, make_pod, make_service
from repro.simkernel import Simulation
from repro.virtualkubelet import VirtualKubelet

from .controlplane import SuperCluster
from .crd import make_virtual_cluster
from .syncer.ha import SyncerHA
from .syncer.syncer import Syncer
from .tenant_operator import TenantOperator
from .vn_agent import VnAgent


class TenantHandle:
    """A tenant's view: its VC object, control plane, and client."""

    def __init__(self, env, vc, control_plane):
        self.env = env
        self.vc = vc
        self.control_plane = control_plane
        self.credential = control_plane.tenant_credential
        self.client = control_plane.client(
            credential=self.credential,
            user_agent=f"tenant-{vc.name}", qps=10_000, burst=20_000)

    @property
    def name(self):
        return self.vc.name

    @property
    def key(self):
        return self.vc.key

    def create_namespace(self, name):
        return self.client.create(make_namespace(name))

    def create_pod(self, name, namespace="default", **kwargs):
        return self.client.create(make_pod(name, namespace=namespace,
                                           **kwargs))

    def create_service(self, name, namespace="default", **kwargs):
        return self.client.create(make_service(name, namespace=namespace,
                                               **kwargs))

    def get_pod(self, name, namespace="default"):
        return self.client.get("pods", name, namespace=namespace)

    def list_pods(self, namespace="default"):
        return self.client.list("pods", namespace=namespace)

    def logs(self, pod_name, namespace="default", container=None, tail=None):
        """Coroutine: fetch pod logs via the vNode's vn-agent."""
        pod = yield from self.get_pod(pod_name, namespace=namespace)
        if not pod.spec.node_name:
            raise ApiError(f"pod {pod_name!r} is not scheduled yet")
        agent = self.env.vn_agents.get(pod.spec.node_name)
        if agent is None:
            raise ApiError(
                f"no vn-agent on node {pod.spec.node_name!r}")
        lines = yield from agent.logs(self.credential, namespace, pod_name,
                                      container=container, tail=tail)
        return lines

    def exec(self, pod_name, command, namespace="default", container=None):
        """Coroutine: exec into a pod via the vNode's vn-agent."""
        pod = yield from self.get_pod(pod_name, namespace=namespace)
        agent = self.env.vn_agents.get(pod.spec.node_name)
        if agent is None:
            raise ApiError(f"no vn-agent on node {pod.spec.node_name!r}")
        result = yield from agent.exec(self.credential, namespace, pod_name,
                                       command, container=container)
        return result


class VirtualClusterEnv:
    """The full simulated deployment."""

    def __init__(self, seed=0, config=None, num_virtual_nodes=0,
                 num_real_nodes=0, fair_queuing=True, dws_workers=None,
                 uws_workers=None, scan_interval=None,
                 vc_namespace="vc-manager", sim=None, name="super",
                 circuit_breaker=True, syncer_replicas=1,
                 warm_standby=True, store_replicas=None, store_wal=None,
                 apf=None, scale_to_zero=None, workers=None):
        self.sim = sim or Simulation(seed=seed, workers=workers)
        self.name = name
        self.config = config or DEFAULT_CONFIG
        if store_replicas is not None or store_wal is not None:
            # Durable-storage opt-in (DESIGN.md §13): every control-plane
            # store gets a WAL, and with replicas > 1 becomes a
            # replicated group with leader election.
            from dataclasses import replace as _replace

            storage = _replace(
                self.config.storage,
                replicas=(store_replicas if store_replicas is not None
                          else self.config.storage.replicas),
                wal_enabled=(bool(store_wal) if store_wal is not None
                             else self.config.storage.wal_enabled))
            self.config = self.config.with_overrides(storage=storage)
        if apf is not None or scale_to_zero is not None:
            # Overload-protection opt-ins (DESIGN.md §15): tiered APF
            # admission on the super apiserver and/or the scale-to-zero
            # control-plane autoscaler.  Both default off (paper-faithful).
            from dataclasses import replace as _replace

            overrides = {}
            if apf is not None:
                overrides["apf"] = _replace(self.config.apf,
                                            enabled=bool(apf))
            if scale_to_zero is not None:
                overrides["swapper"] = _replace(self.config.swapper,
                                                enabled=bool(scale_to_zero))
            self.config = self.config.with_overrides(**overrides)
        self.vc_namespace = vc_namespace
        self.super_cluster = SuperCluster(self.sim, self.config, name=name)
        self.super_cluster.start()
        self.vpc = Vpc("tenant-vpc")
        self.virtual_kubelets = []
        self.real_kubelets = {}
        self.kube_proxies = {}
        self.vn_agents = {}
        self.tenant_operator = TenantOperator(
            self.sim, self.super_cluster, self.config,
            on_deprovisioned=self._on_tenant_deprovisioned)
        self.tenant_operator.start()
        syncer_name = "syncer" if name == "super" else f"{name}-syncer"
        syncer_kwargs = dict(
            fair_queuing=fair_queuing, dws_workers=dws_workers,
            uws_workers=uws_workers, scan_interval=scan_interval,
            circuit_breaker=circuit_breaker)
        if syncer_replicas > 1:
            # HA mode (DESIGN.md §10): N replicas behind a lease; the
            # ``syncer`` property resolves to the serving leader.
            self.syncer_ha = SyncerHA(
                self.sim, self.super_cluster, config=self.config,
                replicas=syncer_replicas, warm_standby=warm_standby,
                **syncer_kwargs)
            self._syncer = None
            self.syncer_ha.start()
        else:
            self.syncer_ha = None
            self._syncer = Syncer(
                self.sim, self.super_cluster, config=self.config,
                name=syncer_name, **syncer_kwargs)
            self._syncer.start()
        self.tenants = {}
        # Scale-to-zero autoscaler over tenant control planes; tenants
        # are tracked (with their tier) as they are created.
        self.swapper = None
        if self.config.swapper.enabled:
            from .swapper import IdleSwapper

            self.swapper = IdleSwapper.from_config(self.sim,
                                                   self.config.swapper)
            self.swapper.start()
        self._num_virtual_nodes = num_virtual_nodes
        self._num_real_nodes = num_real_nodes
        self._bootstrapped = False

    @property
    def syncer(self):
        """The syncer serving reads/writes right now.

        Single-replica mode: the one syncer.  HA mode: the serving
        leader (or the best-informed standby mid-failover).
        """
        if self.syncer_ha is not None:
            return self.syncer_ha.syncer
        return self._syncer

    def _on_tenant_deprovisioned(self, key, _control_plane):
        """TenantOperator hook: tear down syncer per-tenant state when a
        VC is deprovisioned, however the deletion arrived (API delete,
        finalizer, operator resync) — not just via :meth:`delete_tenant`."""
        if self.syncer_ha is not None:
            self.syncer_ha.drop_tenant(key)
        elif self._syncer is not None:
            self._syncer.drop_tenant(key)
        if self.swapper is not None and _control_plane is not None:
            self.swapper.untrack(_control_plane)
        self.tenants.pop(key, None)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def bootstrap(self, settle=2.0):
        """Run the simulation until base infrastructure is up."""
        if self._bootstrapped:
            return
        self.sim.run(until=self.sim.process(self._bootstrap(),
                                            name="bootstrap"))
        self.sim.run(until=self.sim.now + settle)
        self._bootstrapped = True

    def _bootstrap(self):
        admin = self.super_cluster.client(user_agent="bootstrap",
                                          qps=100000, burst=200000)
        for namespace in ("default", "kube-system", self.vc_namespace):
            try:
                yield from admin.create(make_namespace(namespace))
            except ApiError:
                pass
        prefix = "" if self.name == "super" else f"{self.name}-"
        for index in range(self._num_virtual_nodes):
            yield from self.add_virtual_node(f"{prefix}vk-node-{index:03d}")
        for index in range(self._num_real_nodes):
            yield from self._add_real_node(f"{prefix}node-{index:02d}")

    def add_virtual_node(self, name, link=None):
        """Coroutine: add one virtual-kubelet node (bootstrap or runtime).

        ``link`` is an optional :class:`~repro.network.NetworkLink` the
        node's API client traverses on every request — scenario
        topologies use it to place whole node pools behind a
        high-latency or lossy edge uplink (DESIGN.md §14).  Callable
        mid-run, which is how elastic virtual-kubelet pools stage their
        joins.
        """
        client = self.super_cluster.client(
            user_agent=f"vk-{name}", qps=100000, burst=200000)
        if link is not None:
            client.link = link
        informers = InformerFactory(self.sim, client)
        vk = VirtualKubelet(self.sim, name, client, self.config, informers)
        yield from vk.start()
        self.virtual_kubelets.append(vk)
        self.super_cluster.node_agents.append(vk)
        return vk

    def _add_real_node(self, name):
        node = make_node(name, internal_ip=f"192.168.1.{len(self.real_kubelets) + 10}")
        node.metadata.labels["node-type"] = "real"
        client = self.super_cluster.client(
            user_agent=f"kubelet-{name}", qps=100000, burst=200000)
        informers = InformerFactory(self.sim, client)
        host_stack = NetworkStack(name=f"host-{name}")

        proxy_informers = InformerFactory(
            self.sim, self.super_cluster.client(
                user_agent=f"kubeproxy-{name}", qps=100000, burst=200000))
        proxy = EnhancedKubeProxy(self.sim, name, proxy_informers,
                                  host_stack, self.config)
        proxy_informers.informer("services")
        proxy_informers.informer("endpoints")
        proxy_informers.start_all()
        proxy.start()
        self.kube_proxies[name] = proxy

        runtimes = {
            None: RuncRuntime(self.sim, self.config, host_stack,
                              self.vpc.allocate_ip),
            "kata": KataRuntime(self.sim, self.config, self.vpc),
        }
        kubelet = Kubelet(self.sim, node, client, self.config, runtimes,
                          informers, enhanced_proxy=proxy)
        yield from kubelet.start()
        self.real_kubelets[name] = kubelet
        self.super_cluster.node_agents.append(kubelet)

        agent = VnAgent(self.sim, name, kubelet, self.tenant_operator)
        self.vn_agents[name] = agent

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------

    def create_tenant(self, name, weight=1, mode="local",
                      default_namespace="default", tier=None):
        """Coroutine: create a VC, wait for provisioning, wire the syncer.

        ``tier`` (platinum/standard/free) feeds the super apiserver's
        APF classifier and the swapper's wake priority; None means the
        APF default tier.
        """
        admin = self.super_cluster.client(user_agent="admin", qps=100000,
                                          burst=200000)
        vc = make_virtual_cluster(name, namespace=self.vc_namespace,
                                  weight=weight, mode=mode)
        vc = yield from admin.create(vc)
        while True:
            control_plane = self.tenant_operator.control_plane_for(vc.key)
            if control_plane is not None:
                fresh = yield from admin.get("virtualclusters", name,
                                             namespace=self.vc_namespace)
                if fresh.is_running:
                    vc = fresh
                    break
            yield self.sim.timeout(0.1)
        if self.syncer_ha is not None:
            self.syncer_ha.register_tenant(vc, control_plane, weight=weight)
        else:
            self._syncer.register_tenant(vc, control_plane, weight=weight)
        handle = TenantHandle(self, vc, control_plane)
        self.tenants[vc.key] = handle
        self.set_tenant_tier(handle, tier)
        if default_namespace:
            try:
                yield from handle.create_namespace(default_namespace)
            except ApiError:
                pass
        return handle

    def delete_tenant(self, handle):
        """Coroutine: remove a tenant (VC deletion + syncer detach)."""
        admin = self.super_cluster.client(user_agent="admin")
        if self.syncer_ha is not None:
            self.syncer_ha.unregister_tenant(handle.key)
        else:
            self._syncer.unregister_tenant(handle.key)
        self.tenants.pop(handle.key, None)
        yield from admin.delete("virtualclusters", handle.name,
                                namespace=self.vc_namespace)

    def set_tenant_tier(self, handle, tier=None):
        """Wire one tenant's tier into APF classification and the
        scale-to-zero autoscaler (no-ops when neither is enabled)."""
        apf = self.super_cluster.apf
        if apf is not None and tier is not None:
            # The tenant's identity on the super apiserver (used by
            # direct tenant traffic and TenantStorm abusers).
            apf.classifier.assign(f"tenant-{handle.name}", tier)
        if self.swapper is not None:
            self.swapper.track(handle.control_plane, tier=tier or "standard")

    # ------------------------------------------------------------------
    # Run helpers
    # ------------------------------------------------------------------

    def run_coroutine(self, coroutine, name="driver"):
        """Run the sim until ``coroutine`` finishes; return its value."""
        return self.sim.run(until=self.sim.process(coroutine, name=name))

    def run_for(self, seconds):
        self.sim.run(until=self.sim.now + seconds)

    def run_until(self, predicate, timeout=600.0, poll=0.1):
        """Advance the sim until ``predicate()`` is true (or timeout)."""
        deadline = self.sim.now + timeout
        while not predicate():
            if self.sim.now >= deadline:
                raise TimeoutError(
                    f"condition not met within {timeout} simulated seconds")
            self.sim.run(until=min(self.sim.now + poll, deadline))
        return self.sim.now

    def run_until_pods_ready(self, tenant, pod_keys, timeout=600.0):
        """Advance until all tenant pods report Ready."""
        cache = self.syncer.tenant_informer(tenant.key, "pods").cache

        def all_ready():
            for key in pod_keys:
                pod = cache.get(key)
                if pod is None or not pod.status.is_ready:
                    return False
            return True

        return self.run_until(all_ready, timeout=timeout)

    def super_admin_client(self, **kwargs):
        kwargs.setdefault("qps", 100000)
        kwargs.setdefault("burst", 200000)
        return self.super_cluster.client(user_agent="super-admin", **kwargs)
