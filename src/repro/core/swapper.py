"""Idle control-plane memory reduction (paper §V, future work #2).

"How to reduce the tenant control plane resources, especially for idle
tenants, is challenging. ... one possible solution is to allow memory
overcommitment in the nodes that run the tenant control planes and swap
the idle tenant control plane memory out."

This module implements that proposal with its stated trade-off: an idle
tenant control plane's resident memory shrinks to a small residual, and
the *next* request pays a wake-up (page-in) latency.
"""

from repro.simkernel.errors import Interrupt

# Modelled resident set of an idle-but-awake tenant control plane
# (apiserver + etcd + controller manager), before object storage.
BASE_CONTROL_PLANE_BYTES = 220 * 1024 * 1024
PER_OBJECT_BYTES = 18 * 1024


class SwapState:
    """Swap bookkeeping attached to one tenant apiserver."""

    def __init__(self, sim, wake_latency):
        self.sim = sim
        self.wake_latency = wake_latency
        self.swapped = False
        self.swap_outs = 0
        self.swap_ins = 0
        self.wake_time_total = 0.0

    def ensure_awake(self):
        """Coroutine: called on the request path; pages the control
        plane back in when it was swapped out."""
        if not self.swapped:
            return
        self.swapped = False
        self.swap_ins += 1
        self.wake_time_total += self.wake_latency
        yield self.sim.timeout(self.wake_latency)


def control_plane_memory(control_plane, residual_fraction=0.15):
    """Modelled resident bytes of one tenant control plane."""
    objects = len(control_plane.api.store)
    resident = BASE_CONTROL_PLANE_BYTES + objects * PER_OBJECT_BYTES
    state = getattr(control_plane.api, "swap_state", None)
    if state is not None and state.swapped:
        return int(resident * residual_fraction)
    return resident


class IdleSwapper:
    """Watches tenant control planes and swaps out the idle ones.

    A control plane is idle when its apiserver served no requests for
    ``idle_threshold`` simulated seconds.  Swapping is transparent to
    tenants except for the wake-up latency on their next request — the
    performance/cost trade-off the paper describes.
    """

    def __init__(self, sim, idle_threshold=60.0, check_interval=10.0,
                 wake_latency=0.8, residual_fraction=0.15):
        self.sim = sim
        self.idle_threshold = idle_threshold
        self.check_interval = check_interval
        self.wake_latency = wake_latency
        self.residual_fraction = residual_fraction
        self._tracked = {}
        self._process = None
        self.swap_out_count = 0

    def track(self, control_plane):
        """Attach swap support to a tenant control plane."""
        api = control_plane.api
        if getattr(api, "swap_state", None) is None:
            api.swap_state = SwapState(self.sim, self.wake_latency)
        self._tracked[control_plane.name] = {
            "control_plane": control_plane,
            "last_count": api.request_count,
            "last_activity": self.sim.now,
        }

    def untrack(self, control_plane):
        self._tracked.pop(control_plane.name, None)

    def start(self):
        if self._process is None:
            self._process = self.sim.spawn(self._loop(), name="idle-swapper")
        return self._process

    def stop(self):
        if self._process is not None:
            self._process.interrupt("swapper stopped")
            self._process = None

    def _loop(self):
        while True:
            try:
                yield self.sim.timeout(self.check_interval)
            except Interrupt:
                return
            now = self.sim.now
            for entry in self._tracked.values():
                api = entry["control_plane"].api
                if api.request_count != entry["last_count"]:
                    entry["last_count"] = api.request_count
                    entry["last_activity"] = now
                    continue
                idle_for = now - entry["last_activity"]
                if (idle_for >= self.idle_threshold
                        and not api.swap_state.swapped):
                    api.swap_state.swapped = True
                    api.swap_state.swap_outs += 1
                    self.swap_out_count += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def total_resident_bytes(self):
        return sum(
            control_plane_memory(entry["control_plane"],
                                 self.residual_fraction)
            for entry in self._tracked.values()
        )

    def swapped_count(self):
        return sum(
            1 for entry in self._tracked.values()
            if entry["control_plane"].api.swap_state.swapped
        )
