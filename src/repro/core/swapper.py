"""Scale-to-zero tenant control planes (DESIGN.md §15; paper §V #2).

"How to reduce the tenant control plane resources, especially for idle
tenants, is challenging. ... one possible solution is to allow memory
overcommitment in the nodes that run the tenant control planes and swap
the idle tenant control plane memory out."

PR 8 promotes that ablation to a production autoscaler:

- **State machine** — each tracked apiserver carries a
  :class:`SwapState` cycling ``resident -> swapping-out -> swapped ->
  waking -> resident``.  A tenant request landing mid-page-out aborts
  the swap; concurrent wakers coalesce onto one page-in (double-wake
  pays the latency once); a waker killed mid-page-in rolls the state
  back so the next request restarts it.
- **Warm pool** — the most recently swapped planes stay compressed in
  RAM (``warm_pool`` slots, tier-preferential retention: free-tier
  planes are evicted first), so their wake costs
  ``warm_wake_latency`` instead of the cold page-in.
- **Tier-aware wake priority** — page-ins are bounded by a
  :class:`WakeGate` (modelling page-in I/O bandwidth); when a flash
  crowd queues wakes, platinum planes jump the line.
- **SLO accounting** — every wake records (tier, elapsed incl. queue
  wait); :meth:`IdleSwapper.wake_p99` backs the benchmark's SLO gate.

Idleness is judged on *tenant* traffic (``api.user_request_count``):
syncer heartbeats and controller scans are served from the residual
resident set and neither keep a plane awake nor page it back in.
"""

import heapq

from repro.apiserver.apf import TIER_RANK
from repro.simkernel.errors import Interrupt
from repro.simkernel.events import Event
from repro.telemetry import telemetry_of

# Modelled resident set of an idle-but-awake tenant control plane
# (apiserver + etcd + controller manager), before object storage.
BASE_CONTROL_PLANE_BYTES = 220 * 1024 * 1024
PER_OBJECT_BYTES = 18 * 1024

RESIDENT = "resident"
SWAPPING_OUT = "swapping-out"
SWAPPED = "swapped"
WAKING = "waking"


class WakeGate:
    """Priority semaphore bounding concurrent page-ins.

    Waiters are served in (tier rank, arrival) order — platinum wakes
    first when a flash crowd saturates page-in bandwidth.  Dead waiters
    (interrupted while queued) are skipped on release, like the
    workqueue's live-waiter scan.
    """

    def __init__(self, sim, capacity):
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters = []
        self._seq = 0

    def acquire(self, rank):
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._seq += 1
            heapq.heappush(self._waiters, (rank, self._seq, event))
        return event

    def release(self):
        while self._waiters:
            _rank, _seq, event = heapq.heappop(self._waiters)
            if event.callbacks:
                event.succeed()
                return
        self._in_use -= 1


class SwapState:
    """Swap lifecycle attached to one tenant apiserver."""

    def __init__(self, sim, wake_latency=0.8, swapper=None, name="",
                 tier="standard"):
        self.sim = sim
        self.wake_latency = wake_latency   # cold page-in (no swapper)
        self.swapper = swapper
        self.name = name
        self.tier = tier
        self.state = RESIDENT
        self.swap_outs = 0
        self.swap_ins = 0
        self.swapout_aborts = 0
        self.wake_time_total = 0.0
        # Bumped whenever a page-out is started or aborted, so a stale
        # page-out finisher can detect it lost the race.
        self._swap_epoch = 0
        self._wake_waiters = []

    @property
    def swapped(self):
        return self.state == SWAPPED

    @swapped.setter
    def swapped(self, value):
        self.state = SWAPPED if value else RESIDENT

    def ensure_awake(self):
        """Coroutine: called on the request path; pages the control
        plane back in (or joins/aborts an in-flight transition)."""
        while True:
            if self.state == RESIDENT:
                return
            if self.state == SWAPPING_OUT:
                # The request caught the page-out mid-flight: abort it
                # (the plane never left residency, so this is free).
                self._swap_epoch += 1
                self.state = RESIDENT
                self.swapout_aborts += 1
                return
            if self.state == SWAPPED:
                yield from self._wake()
                return
            # WAKING: join the in-flight wake, then re-check — if the
            # waker died mid-page-in the state fell back to SWAPPED and
            # this waiter restarts the wake itself.
            event = Event(self.sim)
            self._wake_waiters.append(event)
            yield event

    def _wake(self):
        self.state = WAKING
        started = self.sim.now
        swapper = self.swapper
        gate = swapper.wake_gate if swapper is not None else None
        try:
            if gate is not None:
                yield gate.acquire(TIER_RANK.get(self.tier, 2))
            if swapper is not None:
                latency, kind = swapper.wake_latency_for(self.name)
            else:
                latency, kind = self.wake_latency, "cold"
            try:
                yield self.sim.timeout(latency)
            finally:
                if gate is not None:
                    gate.release()
        except BaseException:
            # Killed mid-wake: roll back so a joined waiter (or the
            # next request) restarts the page-in.
            self.state = SWAPPED
            self._notify_waiters()
            raise
        self.state = RESIDENT
        self.swap_ins += 1
        elapsed = self.sim.now - started
        self.wake_time_total += elapsed
        if swapper is not None:
            swapper.record_wake(self, elapsed, kind)
        self._notify_waiters()

    def _notify_waiters(self):
        waiters = self._wake_waiters
        self._wake_waiters = []
        for event in waiters:
            if event.callbacks:
                event.succeed()


def control_plane_memory(control_plane, residual_fraction=0.15):
    """Modelled resident bytes of one tenant control plane."""
    objects = len(control_plane.api.store)
    resident = BASE_CONTROL_PLANE_BYTES + objects * PER_OBJECT_BYTES
    state = getattr(control_plane.api, "swap_state", None)
    if state is not None and state.swapped:
        return int(resident * residual_fraction)
    return resident


class IdleSwapper:
    """Watches tenant control planes and swaps out the idle ones.

    A control plane is idle when its apiserver served no *tenant*
    requests for ``idle_threshold`` simulated seconds.  Swapping is
    transparent to tenants except for the wake-up latency on their next
    request — the performance/cost trade-off the paper describes.

    Constructed directly it behaves like the original ablation
    (immediate page-out, no warm pool, unbounded wake concurrency);
    :meth:`from_config` applies the production
    :class:`~repro.config.SwapperConfig` settings.
    """

    def __init__(self, sim, idle_threshold=60.0, check_interval=10.0,
                 wake_latency=0.8, residual_fraction=0.15,
                 swapout_latency=0.0, warm_pool=0, warm_wake_latency=0.15,
                 wake_concurrency=None, wake_slo=None):
        self.sim = sim
        self.idle_threshold = idle_threshold
        self.check_interval = check_interval
        self.wake_latency = wake_latency
        self.residual_fraction = residual_fraction
        self.swapout_latency = swapout_latency
        self.warm_pool = warm_pool
        self.warm_wake_latency = warm_wake_latency
        self.wake_slo = wake_slo
        self.wake_gate = (WakeGate(sim, wake_concurrency)
                         if wake_concurrency else None)
        self._tracked = {}
        self._warm = {}      # name -> {"rank": tier rank, "seq": admit seq}
        self._warm_seq = 0
        self._process = None
        self.swap_out_count = 0
        self.wake_samples = []   # (tier, kind, elapsed incl. gate wait)
        telemetry = telemetry_of(sim)
        self._wakeups_total = telemetry.counter(
            "swapper_wakeups_total", "control-plane page-ins",
            labels=("tier", "kind"))
        self._swapouts_total = telemetry.counter(
            "swapper_swapouts_total", "control-plane page-outs",
            labels=("tier",))
        self._wake_seconds = telemetry.histogram(
            "swapper_wake_seconds", "wake latency incl. queue wait",
            labels=("tier",))
        self._resident_bytes = telemetry.gauge(
            "swapper_resident_bytes",
            "resident memory of tracked control planes")
        self._resident_bytes.set_function(self.total_resident_bytes)

    @classmethod
    def from_config(cls, sim, cfg):
        """Production settings from a :class:`~repro.config.SwapperConfig`."""
        return cls(sim,
                   idle_threshold=cfg.idle_threshold,
                   check_interval=cfg.check_interval,
                   wake_latency=cfg.cold_wake_latency,
                   residual_fraction=cfg.residual_fraction,
                   swapout_latency=cfg.swapout_latency,
                   warm_pool=cfg.warm_pool,
                   warm_wake_latency=cfg.warm_wake_latency,
                   wake_concurrency=cfg.wake_concurrency,
                   wake_slo=cfg.wake_slo)

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------

    def track(self, control_plane, tier="standard"):
        """Attach swap support to a tenant control plane."""
        api = control_plane.api
        if getattr(api, "swap_state", None) is None:
            api.swap_state = SwapState(
                self.sim, wake_latency=self.wake_latency, swapper=self,
                name=control_plane.name, tier=tier)
        else:
            api.swap_state.swapper = self
            api.swap_state.tier = tier
        self._tracked[control_plane.name] = {
            "control_plane": control_plane,
            "tier": tier,
            "last_count": api.user_request_count,
            "last_activity": self.sim.now,
        }

    def untrack(self, control_plane):
        self._tracked.pop(control_plane.name, None)
        self._warm.pop(control_plane.name, None)

    def start(self):
        if self._process is None:
            self._process = self.sim.spawn(self._loop(), name="idle-swapper")
        return self._process

    def stop(self):
        if self._process is not None:
            self._process.interrupt("swapper stopped")
            self._process = None

    def _loop(self):
        while True:
            try:
                yield self.sim.timeout(self.check_interval)
            except Interrupt:
                return
            now = self.sim.now
            for entry in self._tracked.values():
                api = entry["control_plane"].api
                if api.user_request_count != entry["last_count"]:
                    entry["last_count"] = api.user_request_count
                    entry["last_activity"] = now
                    continue
                idle_for = now - entry["last_activity"]
                if (idle_for >= self.idle_threshold
                        and api.swap_state.state == RESIDENT):
                    self._begin_swapout(entry, api.swap_state)

    # ------------------------------------------------------------------
    # Page-out
    # ------------------------------------------------------------------

    def _begin_swapout(self, entry, state):
        state._swap_epoch += 1
        if self.swapout_latency <= 0:
            self._finish_swapout(entry, state)
            return
        state.state = SWAPPING_OUT
        self.sim.spawn(self._swapout_window(entry, state, state._swap_epoch),
                       name=f"swapout-{entry['control_plane'].name}")

    def _swapout_window(self, entry, state, epoch):
        yield self.sim.timeout(self.swapout_latency)
        if state.state == SWAPPING_OUT and state._swap_epoch == epoch:
            self._finish_swapout(entry, state)

    def _finish_swapout(self, entry, state):
        state.state = SWAPPED
        state.swap_outs += 1
        self.swap_out_count += 1
        self._swapouts_total.labels(tier=entry["tier"]).inc()
        self._warm_admit(entry["control_plane"].name, entry["tier"])

    def _warm_admit(self, name, tier):
        if self.warm_pool <= 0:
            return
        self._warm_seq += 1
        self._warm[name] = {"rank": TIER_RANK.get(tier, 2),
                            "seq": self._warm_seq}
        if len(self._warm) > self.warm_pool:
            # Evict the least-retainable entry: lowest tier first,
            # oldest within a tier (higher rank == lower tier).
            victim = max(self._warm.items(),
                         key=lambda kv: (kv[1]["rank"], -kv[1]["seq"]))
            del self._warm[victim[0]]

    # ------------------------------------------------------------------
    # Page-in (called from SwapState._wake)
    # ------------------------------------------------------------------

    def wake_latency_for(self, name):
        """(latency, kind) of one page-in; consumes the warm slot."""
        if self._warm.pop(name, None) is not None:
            return self.warm_wake_latency, "warm"
        return self.wake_latency, "cold"

    def record_wake(self, state, elapsed, kind):
        self._wakeups_total.labels(tier=state.tier, kind=kind).inc()
        self._wake_seconds.labels(tier=state.tier).observe(elapsed)
        self.wake_samples.append((state.tier, kind, elapsed))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def total_resident_bytes(self):
        return sum(
            control_plane_memory(entry["control_plane"],
                                 self.residual_fraction)
            for entry in self._tracked.values()
        )

    def swapped_count(self):
        return sum(
            1 for entry in self._tracked.values()
            if entry["control_plane"].api.swap_state.swapped
        )

    def wake_p99(self, tier=None):
        """p99 wake latency (including gate queueing), optionally per tier."""
        samples = sorted(elapsed for t, _kind, elapsed in self.wake_samples
                         if tier is None or t == tier)
        if not samples:
            return 0.0
        index = min(len(samples) - 1, int(0.99 * (len(samples) - 1) + 0.5))
        return samples[index]
