"""Per-Pod creation tracing: the five phases of Fig. 8 / Table I.

Every tenant Pod's path through the system is timestamped at the phase
boundaries the paper defines:

1. DWS-Queue   — time in the downward worker queue;
2. DWS-Process — downward synchronization (create in super cluster);
3. Super-Sched — time in the super cluster until Running/Ready;
4. UWS-Queue   — time in the upward worker queue;
5. UWS-Process — upward synchronization (status back to the tenant).
"""

PHASES = ("DWS-Queue", "DWS-Process", "Super-Sched", "UWS-Queue",
          "UWS-Process")


class PodTrace:
    """Timestamps for one tenant Pod's creation round trip."""

    __slots__ = ("tenant", "pod_key", "created", "dws_dequeue", "dws_done",
                 "super_ready", "uws_dequeue", "uws_done")

    def __init__(self, tenant, pod_key, created):
        self.tenant = tenant
        self.pod_key = pod_key
        self.created = created
        self.dws_dequeue = None
        self.dws_done = None
        self.super_ready = None
        self.uws_dequeue = None
        self.uws_done = None

    @property
    def complete(self):
        return self.uws_done is not None

    @property
    def total(self):
        """End-to-end Pod creation time (the paper's headline metric)."""
        if not self.complete:
            return None
        return self.uws_done - self.created

    def phases(self):
        """Dict of phase name -> duration (None until complete)."""
        if not self.complete:
            return None
        return {
            "DWS-Queue": self.dws_dequeue - self.created,
            "DWS-Process": self.dws_done - self.dws_dequeue,
            "Super-Sched": self.super_ready - self.dws_done,
            "UWS-Queue": self.uws_dequeue - self.super_ready,
            "UWS-Process": self.uws_done - self.uws_dequeue,
        }


class TraceStore:
    """All Pod traces for one syncer."""

    def __init__(self):
        self._traces = {}

    def begin(self, tenant, pod_key, created):
        key = (tenant, pod_key)
        if key not in self._traces:
            self._traces[key] = PodTrace(tenant, pod_key, created)
        return self._traces[key]

    def get(self, tenant, pod_key):
        return self._traces.get((tenant, pod_key))

    def mark(self, tenant, pod_key, field, now):
        trace = self._traces.get((tenant, pod_key))
        if trace is not None and getattr(trace, field) is None:
            setattr(trace, field, now)

    def completed(self):
        return [t for t in self._traces.values() if t.complete]

    def all(self):
        return list(self._traces.values())

    def __len__(self):
        return len(self._traces)

    # ------------------------------------------------------------------
    # Aggregations used by the benchmark harness
    # ------------------------------------------------------------------

    def creation_times(self):
        return [trace.total for trace in self.completed()]

    def mean_phase_breakdown(self):
        """Average seconds per phase across completed traces (Fig. 8)."""
        completed = self.completed()
        if not completed:
            return {phase: 0.0 for phase in PHASES}
        sums = {phase: 0.0 for phase in PHASES}
        for trace in completed:
            for phase, value in trace.phases().items():
                sums[phase] += value
        return {phase: total / len(completed)
                for phase, total in sums.items()}

    def phase_bucket_counts(self, bucket_width=2.0, bucket_count=5):
        """Table I: per-phase counts in fixed-width time buckets."""
        buckets = {phase: [0] * bucket_count for phase in PHASES}
        for trace in self.completed():
            for phase, value in trace.phases().items():
                index = min(int(value // bucket_width), bucket_count - 1)
                buckets[phase][index] += 1
        return buckets

    def mean_creation_time_by_tenant(self):
        """Fig. 11: average Pod creation time per tenant."""
        sums = {}
        counts = {}
        for trace in self.completed():
            sums[trace.tenant] = sums.get(trace.tenant, 0.0) + trace.total
            counts[trace.tenant] = counts.get(trace.tenant, 0) + 1
        return {tenant: sums[tenant] / counts[tenant] for tenant in sums}
