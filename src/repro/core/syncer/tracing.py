"""Per-Pod creation tracing: the five phases of Fig. 8 / Table I.

Every tenant Pod's path through the system is timestamped at the phase
boundaries the paper defines:

1. DWS-Queue   — time in the downward worker queue;
2. DWS-Process — downward synchronization (create in super cluster);
3. Super-Sched — time in the super cluster until Running/Ready;
4. UWS-Queue   — time in the upward worker queue;
5. UWS-Process — upward synchronization (status back to the tenant).

Retention is bounded: when a ``cap`` is set, completing a trace folds it
into a compact per-pod record (tenant, total, five phase durations — a
few floats instead of a :class:`PodTrace` plus its key) and the oldest
completed :class:`PodTrace` objects beyond the cap are evicted.  Every
aggregate — percentiles, phase means, bucket counts, per-tenant means —
reads the compact records, so they stay **exact** over an entire chaos
soak while ``len(store)`` stays bounded.
"""

PHASES = ("DWS-Queue", "DWS-Process", "Super-Sched", "UWS-Queue",
          "UWS-Process")


class PodTrace:
    """Timestamps for one tenant Pod's creation round trip."""

    __slots__ = ("tenant", "pod_key", "created", "dws_dequeue", "dws_done",
                 "super_ready", "uws_dequeue", "uws_done")

    def __init__(self, tenant, pod_key, created):
        self.tenant = tenant
        self.pod_key = pod_key
        self.created = created
        self.dws_dequeue = None
        self.dws_done = None
        self.super_ready = None
        self.uws_dequeue = None
        self.uws_done = None

    @property
    def complete(self):
        return self.uws_done is not None

    @property
    def total(self):
        """End-to-end Pod creation time (the paper's headline metric)."""
        if not self.complete:
            return None
        return self.uws_done - self.created

    def phases(self):
        """Dict of phase name -> duration (None until complete)."""
        if not self.complete:
            return None
        return {
            "DWS-Queue": self.dws_dequeue - self.created,
            "DWS-Process": self.dws_done - self.dws_dequeue,
            "Super-Sched": self.super_ready - self.dws_done,
            "UWS-Queue": self.uws_dequeue - self.super_ready,
            "UWS-Process": self.uws_done - self.uws_dequeue,
        }


class _CompletedRecord:
    """Compact fold of one completed trace (survives eviction)."""

    __slots__ = ("tenant", "total", "phases")

    def __init__(self, tenant, total, phases):
        self.tenant = tenant
        self.total = total
        self.phases = phases  # tuple in PHASES order


class TraceStore:
    """All Pod traces for one syncer.

    ``cap``
        maximum live :class:`PodTrace` objects (``len(store)``); the
        oldest *completed* traces are evicted past it.  ``None`` keeps
        everything (the historical behaviour).
    ``telemetry``
        optional :class:`~repro.telemetry.Telemetry` hub; completed
        traces observe ``pod_creation_seconds{tenant}`` and
        ``pod_phase_seconds{phase}`` histograms.
    """

    def __init__(self, cap=None, telemetry=None):
        self._traces = {}
        self._cap = cap
        # Completed keys in completion order (eviction order), and keys
        # ever completed (so a relist's replayed add can't re-trace an
        # evicted pod and double-count it).
        self._completed_order = []
        self._evict_cursor = 0
        self._completed_keys = set()
        self._records = []
        self._creation_hist = None
        self._phase_hist = None
        if telemetry is not None:
            self._creation_hist = telemetry.histogram(
                "pod_creation_seconds", "end-to-end Pod creation time",
                labels=("tenant",))
            self._phase_hist = telemetry.histogram(
                "pod_phase_seconds", "Pod creation time per phase",
                labels=("phase",))

    def begin(self, tenant, pod_key, created):
        key = (tenant, pod_key)
        if key in self._completed_keys:
            # Already completed (possibly evicted): a replayed informer
            # add must not restart the trace.
            return self._traces.get(key)
        if key not in self._traces:
            self._traces[key] = PodTrace(tenant, pod_key, created)
        return self._traces[key]

    def get(self, tenant, pod_key):
        return self._traces.get((tenant, pod_key))

    def mark(self, tenant, pod_key, field, now):
        key = (tenant, pod_key)
        trace = self._traces.get(key)
        if trace is None or getattr(trace, field) is not None:
            return
        setattr(trace, field, now)
        if trace.complete:
            self._fold(key, trace)

    def _fold(self, key, trace):
        """Record a just-completed trace and evict past the cap."""
        self._completed_keys.add(key)
        self._completed_order.append(key)
        phases = trace.phases()
        self._records.append(_CompletedRecord(
            trace.tenant, trace.total,
            tuple(phases[phase] for phase in PHASES)))
        if self._creation_hist is not None:
            self._creation_hist.labels(tenant=trace.tenant).observe(
                trace.total)
            for phase, value in phases.items():
                self._phase_hist.labels(phase=phase).observe(value)
        if self._cap is None:
            return
        while (len(self._traces) > self._cap
               and self._evict_cursor < len(self._completed_order)):
            victim = self._completed_order[self._evict_cursor]
            self._evict_cursor += 1
            self._traces.pop(victim, None)
        if self._evict_cursor > self._cap:
            # Drop the consumed prefix so the order list stays O(cap).
            del self._completed_order[:self._evict_cursor]
            self._evict_cursor = 0

    def _sync_folds(self):
        """Fold traces completed without :meth:`mark` (callers that set
        the phase fields directly on the :class:`PodTrace`)."""
        for key, trace in list(self._traces.items()):
            if trace.complete and key not in self._completed_keys:
                self._fold(key, trace)

    def completed(self):
        """Completed traces still retained (full-fidelity objects).

        Under a retention cap old completed traces are evicted — use
        :attr:`completed_count` and the aggregate methods for exact
        whole-run numbers.
        """
        return [t for t in self._traces.values() if t.complete]

    @property
    def completed_count(self):
        """Exact count of traces ever completed (eviction-proof)."""
        self._sync_folds()
        return len(self._records)

    def all(self):
        return list(self._traces.values())

    def __len__(self):
        return len(self._traces)

    # ------------------------------------------------------------------
    # Aggregations used by the benchmark harness (exact: read the
    # compact records, never the evictable trace objects)
    # ------------------------------------------------------------------

    def creation_times(self):
        self._sync_folds()
        return [record.total for record in self._records]

    def mean_phase_breakdown(self):
        """Average seconds per phase across completed traces (Fig. 8)."""
        self._sync_folds()
        if not self._records:
            return {phase: 0.0 for phase in PHASES}
        sums = [0.0] * len(PHASES)
        for record in self._records:
            for index, value in enumerate(record.phases):
                sums[index] += value
        count = len(self._records)
        return {phase: sums[index] / count
                for index, phase in enumerate(PHASES)}

    def phase_bucket_counts(self, bucket_width=2.0, bucket_count=5):
        """Table I: per-phase counts in fixed-width time buckets."""
        self._sync_folds()
        buckets = {phase: [0] * bucket_count for phase in PHASES}
        for record in self._records:
            for index, phase in enumerate(PHASES):
                slot = min(int(record.phases[index] // bucket_width),
                           bucket_count - 1)
                buckets[phase][slot] += 1
        return buckets

    def mean_creation_time_by_tenant(self):
        """Fig. 11: average Pod creation time per tenant."""
        self._sync_folds()
        sums = {}
        counts = {}
        for record in self._records:
            sums[record.tenant] = (sums.get(record.tenant, 0.0)
                                   + record.total)
            counts[record.tenant] = counts.get(record.tenant, 0) + 1
        return {tenant: sums[tenant] / counts[tenant] for tenant in sums}
