"""The centralized resource syncer (paper §III-C, Fig. 5).

One syncer instance serves *all* tenant control planes:

- per-tenant informers feed a shared **downward** fair work queue
  (per-tenant sub-queues, weighted round-robin dispatch);
- super-cluster informers feed the **upward** queue with status changes;
- per-resource reconcilers do the actual downward/upward convergence,
  comparing against informer caches only;
- the enqueue/dequeue critical sections are guarded by one lock per
  queue — the serialization the paper blames for the ~21% throughput
  degradation;
- a per-tenant periodic scanner remediates permanently-missed states;
- the vNode manager maintains one virtual node per physical node per
  tenant and broadcasts heartbeats.

The syncer is stateless with respect to durable data (everything it knows
is rebuilt from list+watch), so a restart just relists — measured in the
restart benchmark.
"""

from repro.apiserver.errors import ApiError
from repro.clientgo import (
    FairWorkQueue,
    InformerFactory,
    JitteredBackoff,
    ShardedFairWorkQueue,
    ShutDown,
)
from repro.config import DEFAULT_CONFIG
from repro.objects import Namespace
from repro.simkernel.errors import Interrupt
from repro.telemetry import telemetry_of

from ..crd import super_namespace
from .batch import DownwardBatchWriter
from .conversion import (
    ANNOTATION_TENANT_NAMESPACE,
    ANNOTATION_VC,
    INDEX_NODE,
    INDEX_TENANT,
    LABEL_MANAGED_BY,
    MANAGED_BY_VALUE,
    node_index,
    tenant_index,
    tenant_origin,
)
from .reconcilers import (
    DOWNWARD_TYPES,
    ClusterResourceUpward,
    EndpointsUpward,
    EventUpward,
    GenericDownward,
    NamespaceDownward,
    PodDownward,
    PodUpward,
    ServiceDownward,
)
from .crd_sync import CrdSyncManager
from .health import HealthTracker
from .scanner import PeriodicScanner
from .tracing import TraceStore
from .vnode import VNodeManager

# Super-cluster resources the syncer watches.
SUPER_WATCHED = (
    "pods", "namespaces", "services", "secrets", "configmaps",
    "serviceaccounts", "persistentvolumeclaims", "resourcequotas",
    "endpoints", "nodes", "events", "persistentvolumes", "storageclasses",
)
# Tenant-side resources the syncer watches per tenant.  "nodes" is
# watch-only: it feeds the scanner's stale-vNode detection (vNodes live
# in the tenant control plane but are managed by the vNode manager).
TENANT_WATCHED = DOWNWARD_TYPES + ("endpoints", "persistentvolumes",
                                   "storageclasses", "nodes")


class TenantRegistration:
    """Everything the syncer holds for one tenant control plane."""

    __slots__ = ("vc", "control_plane", "client", "informers", "weight")

    def __init__(self, vc, control_plane, client, informers, weight):
        self.vc = vc
        self.control_plane = control_plane
        self.client = client
        self.informers = informers
        self.weight = weight


class Syncer:
    """The centralized syncer controller."""

    def __init__(self, sim, super_cluster, config=None, fair_queuing=True,
                 dws_workers=None, uws_workers=None, vn_agent_port=10550,
                 name="syncer", scan_interval=None, circuit_breaker=True):
        self.sim = sim
        self.super_cluster = super_cluster
        self.config = config or DEFAULT_CONFIG
        self.name = name
        self.fair_queuing = fair_queuing
        self.circuit_breaker = circuit_breaker
        self.vn_agent_port = vn_agent_port
        cfg = self.config.syncer
        self.dws_workers = dws_workers or cfg.default_dws_workers
        self.uws_workers = uws_workers or cfg.default_uws_workers

        self.cpu = sim.accounting.cpu_account(name)
        self.mem = sim.accounting.memory_account(name)

        self.super_client = super_cluster.client(
            user_agent=f"{name}-super", qps=1_000_000, burst=2_000_000,
            cpu_account=self.cpu)
        mem_cfg = self.config.memory
        self.super_informers = InformerFactory(
            sim, self.super_client,
            size_factor=mem_cfg.object_size_factor,
            size_overhead=mem_cfg.informer_overhead_bytes,
            handler_cost=cfg.informer_handler, cpu_account=self.cpu)

        # Dispatch sharding (DESIGN.md §9): with shards == 1 this is the
        # paper's single serialized queue + lock; with N shards, tenants
        # hash to independent queues, each with its own critical section.
        self.dispatch_shards = max(1, cfg.dispatch_shards)
        from repro.simkernel.resources import Lock

        if self.dispatch_shards > 1:
            self.downward = ShardedFairWorkQueue(
                sim, name=f"{name}-downward", shards=self.dispatch_shards,
                fair=fair_queuing)
            self.upward = ShardedFairWorkQueue(
                sim, name=f"{name}-upward", shards=self.dispatch_shards,
                fair=fair_queuing)
            self.dws_locks = [Lock(sim, name=f"{name}-dws-lock-{i}")
                              for i in range(self.dispatch_shards)]
            self.uws_locks = [Lock(sim, name=f"{name}-uws-lock-{i}")
                              for i in range(self.dispatch_shards)]
        else:
            self.downward = FairWorkQueue(sim, name=f"{name}-downward",
                                          fair=fair_queuing)
            self.upward = FairWorkQueue(sim, name=f"{name}-upward",
                                        fair=fair_queuing)
            self.dws_locks = [Lock(sim, name=f"{name}-dws-lock")]
            self.uws_locks = [Lock(sim, name=f"{name}-uws-lock")]
        # Shard 0's lock keeps the historical attribute names alive for
        # tests and reports.
        self.dws_lock = self.dws_locks[0]
        self.uws_lock = self.uws_locks[0]
        self.super_writer = DownwardBatchWriter(self)

        self.tenants = {}
        telemetry = telemetry_of(sim)
        self._telemetry = telemetry
        self.trace_store = TraceStore(cap=cfg.trace_retention_cap,
                                      telemetry=telemetry)
        self.vnodes = VNodeManager(self)
        self.crd_sync = CrdSyncManager(self)
        self.scanner = PeriodicScanner(
            self, interval=scan_interval or cfg.scan_interval)
        # Bookkeeping counters live in the registry (one family, labeled
        # by syncer and event); :attr:`counters` renders the historical
        # dict view from it.
        self._events_counter = telemetry.counter(
            "syncer_events_total", "syncer bookkeeping events",
            labels=("syncer", "event"))
        items = telemetry.counter(
            "syncer_items_total", "queue items reconciled",
            labels=("syncer", "direction"))
        self._items_dws = items.labels(syncer=name, direction="downward")
        self._items_uws = items.labels(syncer=name, direction="upward")
        self.health = HealthTracker(self, enabled=circuit_breaker)
        # label -> live worker Process, maintained by the supervisors.
        self.worker_processes = {}
        # label -> respawn count (watchdog restarts after crashes).
        self.worker_restarts = {}

        self.downward_reconcilers = self._build_downward_reconcilers()
        self.upward_reconcilers = self._build_upward_reconcilers()

        # super namespace -> (tenant vc key, tenant namespace)
        self._namespace_origin = {}
        self._ensured_namespaces = set()
        self._processes = []
        self._stopped = False
        self._started = False
        self._informers_started = False
        # HA (DESIGN.md §10): set by SyncerHA when this instance is one
        # replica of an active/standby group.  While set, every downward
        # write is stamped with (ha_domain, fencing_token) so the store
        # rejects a deposed leader's in-flight batches.
        self.ha_domain = None
        self.fencing_token = 0
        self._setup_super_informers()
        self._register_memory_meters()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_downward_reconcilers(self):
        from repro.objects import (
            ConfigMap,
            PersistentVolumeClaim,
            ResourceQuota,
            Secret,
            ServiceAccount,
        )

        return {
            "namespaces": NamespaceDownward(self),
            "pods": PodDownward(self),
            "services": ServiceDownward(self),
            "secrets": GenericDownward(self, "secrets", Secret),
            "configmaps": GenericDownward(self, "configmaps", ConfigMap),
            "serviceaccounts": GenericDownward(self, "serviceaccounts",
                                               ServiceAccount),
            "persistentvolumeclaims": GenericDownward(
                self, "persistentvolumeclaims", PersistentVolumeClaim),
            "resourcequotas": GenericDownward(self, "resourcequotas",
                                              ResourceQuota),
        }

    def _build_upward_reconcilers(self):
        from repro.objects import PersistentVolume, StorageClass

        return {
            "pods": PodUpward(self),
            "events": EventUpward(self),
            "endpoints": EndpointsUpward(self),
            "persistentvolumes": ClusterResourceUpward(
                self, "persistentvolumes", PersistentVolume),
            "storageclasses": ClusterResourceUpward(
                self, "storageclasses", StorageClass),
        }

    def _setup_super_informers(self):
        for plural in SUPER_WATCHED:
            informer = self.super_informers.informer(plural)
            # Synced super objects carry their owner VC annotation; the
            # tenant index turns the scanner's per-tenant sweeps from
            # O(all objects) into O(tenant's objects).
            informer.cache.add_index(INDEX_TENANT, tenant_index)
        self.super_informer("pods").cache.add_index(INDEX_NODE, node_index)

        pods = self.super_informer("pods")
        pods.add_handlers(
            on_add=self._on_super_pod,
            on_update=lambda old, new: self._on_super_pod(new, old=old),
        )
        events = self.super_informer("events")
        events.add_handlers(on_add=self._on_super_event)
        endpoints = self.super_informer("endpoints")
        endpoints.add_handlers(
            on_add=self._on_super_endpoints,
            on_update=lambda old, new: self._on_super_endpoints(new),
        )
        for plural in ("persistentvolumes", "storageclasses"):
            informer = self.super_informer(plural)
            informer.add_handlers(
                on_add=lambda obj, p=plural: self._broadcast_upward(p, obj),
                on_update=lambda old, new, p=plural: self._broadcast_upward(
                    p, new),
                on_delete=lambda obj, p=plural: self._broadcast_upward(
                    p, obj),
            )

    def _register_memory_meters(self):
        mem_cfg = self.config.memory

        def tenant_cache_bytes():
            return sum(reg.informers.total_cache_bytes
                       for reg in self.tenants.values())

        def queue_bytes():
            return ((len(self.downward) + len(self.upward))
                    * mem_cfg.queue_entry_bytes)

        self.mem.register_meter("super-informer-caches",
                                lambda: self.super_informers.total_cache_bytes)
        self.mem.register_meter("tenant-informer-caches", tenant_cache_bytes)
        self.mem.register_meter("work-queues", queue_bytes)

    # ------------------------------------------------------------------
    # Informer accessors
    # ------------------------------------------------------------------

    def super_informer(self, plural):
        return self.super_informers.informer(plural)

    def tenant_informer(self, tenant, plural):
        return self.tenants[tenant].informers.informer(plural)

    def spawn(self, coroutine, name=None, affinity=None):
        return self.sim.spawn(coroutine, name=name, affinity=affinity)

    def metrics_inc(self, counter):
        self._events_counter.labels(syncer=self.name, event=counter).inc()

    @property
    def counters(self):
        """Historical dict view of this syncer's bookkeeping events,
        rendered from the ``syncer_events_total`` registry family."""
        return {values[1]: int(child.value)
                for values, child in self._events_counter.children()
                if values[0] == self.name}

    def current_fence(self):
        """The (domain, token) stamp for downward writes, or None when
        this syncer is not running as an HA replica."""
        if self.ha_domain is None:
            return None
        return (self.ha_domain, self.fencing_token)

    # ------------------------------------------------------------------
    # Tenant registration
    # ------------------------------------------------------------------

    def register_tenant(self, vc, control_plane, weight=None):
        """Attach a tenant control plane to the syncer."""
        tenant = vc.key
        if tenant in self.tenants:
            return self.tenants[tenant]
        client = control_plane.client(
            user_agent=f"{self.name}-{control_plane.name}",
            qps=1_000_000, burst=2_000_000, cpu_account=self.cpu)
        mem_cfg = self.config.memory
        informers = InformerFactory(
            self.sim, client,
            size_factor=mem_cfg.object_size_factor,
            size_overhead=mem_cfg.informer_overhead_bytes,
            handler_cost=self.config.syncer.informer_handler,
            cpu_account=self.cpu)
        registration = TenantRegistration(
            vc, control_plane, client, informers,
            weight or vc.spec.tenant_weight or 1)
        self.tenants[tenant] = registration
        self.downward.register_tenant(tenant, weight=registration.weight)
        self.upward.register_tenant(tenant, weight=registration.weight)

        for plural in TENANT_WATCHED:
            informer = informers.informer(plural)
            if plural in DOWNWARD_TYPES:
                self._wire_downward_handlers(tenant, plural, informer)
        if self._informers_started:
            informers.start_all()
        if self._started:
            self.scanner.start_tenant(tenant)
        return registration

    def unregister_tenant(self, tenant):
        registration = self.tenants.pop(tenant, None)
        if registration is None:
            return
        self.crd_sync.drop_tenant(tenant)
        self.health.drop_tenant(tenant)
        self.scanner.stop_tenant(tenant)
        registration.informers.stop_all()
        self.downward.remove_tenant(tenant)
        self.upward.remove_tenant(tenant)

    # Teardown of per-tenant state when a VC is deprovisioned (wired to
    # TenantOperator's on_deprovisioned hook): identical to unregistering.
    drop_tenant = unregister_tenant

    def _wire_downward_handlers(self, tenant, plural, informer):
        def on_add(obj):
            if plural == "pods":
                self.trace_store.begin(
                    tenant, obj.key,
                    obj.metadata.creation_timestamp
                    if obj.metadata.creation_timestamp is not None
                    else self.sim.now)
            self.enqueue_downward(tenant, plural, obj.key)

        def on_update(old, new):
            if not self._downward_relevant_change(old, new):
                return
            self.enqueue_downward(tenant, plural, new.key)

        def on_delete(obj):
            self.enqueue_downward(tenant, plural, obj.key)

        informer.add_handlers(on_add=on_add, on_update=on_update,
                              on_delete=on_delete)

    @staticmethod
    def _downward_relevant_change(old, new):
        """Skip echoes of the syncer's own upward writes (status, binding)."""
        if old is None:
            return True
        if (old.metadata.deletion_timestamp
                != new.metadata.deletion_timestamp):
            return True
        if (old.metadata.labels or {}) != (new.metadata.labels or {}):
            return True
        # Payload types without a spec (Secrets, ConfigMaps) change via
        # their data blocks — check those before the spec short-circuit.
        for attr in ("data", "string_data", "binary_data"):
            if getattr(old, attr, None) != getattr(new, attr, None):
                return True
        old_spec = getattr(old, "spec", None)
        new_spec = getattr(new, "spec", None)
        if old_spec is None or new_spec is None:
            return False
        old_dump = (old_spec.to_dict() if hasattr(old_spec, "to_dict")
                    else dict(old_spec))
        new_dump = (new_spec.to_dict() if hasattr(new_spec, "to_dict")
                    else dict(new_spec))
        old_dump.pop("nodeName", None)
        new_dump.pop("nodeName", None)
        return old_dump != new_dump

    # ------------------------------------------------------------------
    # Super-cluster event handlers (upward feeding)
    # ------------------------------------------------------------------

    def _on_super_pod(self, pod, old=None):
        origin = tenant_origin(pod)
        if origin is None:
            return
        tenant = origin[0]
        if tenant not in self.tenants:
            return
        if pod.status.is_ready and (old is None or not old.status.is_ready):
            t_key = (f"{origin[1]}/{origin[2]}" if origin[1] else origin[2])
            self.trace_store.mark(tenant, t_key, "super_ready", self.sim.now)
        self.enqueue_upward(tenant, "pods", pod.key)

    def _on_super_event(self, event):
        origin = self._namespace_origin.get(event.namespace)
        if origin is None:
            return
        tenant, _tenant_ns = origin
        if tenant in self.tenants:
            self.enqueue_upward(tenant, "events", event.key)

    def _on_super_endpoints(self, endpoints):
        origin = self._namespace_origin.get(endpoints.namespace)
        if origin is None:
            return
        tenant, _tenant_ns = origin
        if tenant in self.tenants:
            self.enqueue_upward(tenant, "endpoints", endpoints.key)

    def _broadcast_upward(self, plural, obj):
        for tenant in self.tenants:
            self.enqueue_upward(tenant, plural, obj.key)

    # ------------------------------------------------------------------
    # Queue feeding
    # ------------------------------------------------------------------

    def enqueue_downward(self, tenant, plural, key):
        self.downward.add(tenant, (plural, key))

    def enable_crd_sync(self, tenant, crd):
        """Synchronize a tenant CRD downward (paper §V future work)."""
        return self.crd_sync.enable(tenant, crd)

    def downward_plurals_for(self, tenant):
        """Built-in downward types plus the tenant's synced CRDs."""
        return list(DOWNWARD_TYPES) + self.crd_sync.plurals_for(tenant)

    def enqueue_upward(self, tenant, plural, key):
        self.upward.add(tenant, (plural, key))

    def requeue_upward_later(self, tenant, plural, key, delay=0.5):
        """Retry an upward item after a short backoff (used when a write
        raced; the super object may produce no further events)."""

        def later():
            yield self.sim.timeout(delay)
            if tenant in self.tenants:
                self.upward.add(tenant, (plural, key))

        self.spawn(later(), name=f"uws-retry-{plural}", affinity=tenant)

    # ------------------------------------------------------------------
    # Namespace mapping
    # ------------------------------------------------------------------

    def ensure_super_namespace(self, vc, tenant_namespace):
        """Coroutine: create the prefixed super namespace once."""
        sname = super_namespace(vc, tenant_namespace)
        self._namespace_origin[sname] = (vc.key, tenant_namespace)
        if sname in self._ensured_namespaces:
            return sname
        self._ensured_namespaces.add(sname)
        namespace = Namespace()
        namespace.metadata.name = sname
        namespace.metadata.labels = {LABEL_MANAGED_BY: MANAGED_BY_VALUE}
        namespace.metadata.annotations = {
            ANNOTATION_VC: vc.key,
            ANNOTATION_TENANT_NAMESPACE: tenant_namespace,
        }
        try:
            # Routed through the batch writer so the create is fenced
            # (and batched) like every other downward write.
            yield from self.super_writer.create(namespace)
        except ApiError:
            pass
        return sname

    def resolve_super_namespace(self, sname):
        return self._namespace_origin.get(sname)

    def owns(self, tenant, super_obj):
        annotations = super_obj.metadata.annotations or {}
        return annotations.get(ANNOTATION_VC) == tenant

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Start informers, workers, scanners, vNode heartbeats."""
        self.start_processing()

    def start_informers(self):
        """Start (only) the informer machinery: list+watch into caches.

        An HA standby runs exactly this — warm caches, no reconciling —
        so its takeover skips the full relist a cold start pays.
        """
        if self._informers_started:
            return
        self._informers_started = True
        self.super_informers.start_all()
        for registration in self.tenants.values():
            registration.informers.start_all()

    def start_processing(self):
        """Start workers, scanners and heartbeats (informers implied)."""
        if self._started:
            return
        self.start_informers()
        self._started = True
        self._stopped = False
        self.super_writer.start()
        for index in range(self.dws_workers):
            label = f"{self.name}-dws-{index}"
            shard = index % self.dispatch_shards
            self._processes.append(self.spawn(
                self._supervise(label,
                                lambda s=shard: self._dws_worker(s)),
                name=f"{label}-watchdog"))
        for index in range(self.uws_workers):
            label = f"{self.name}-uws-{index}"
            shard = index % self.dispatch_shards
            self._processes.append(self.spawn(
                self._supervise(label,
                                lambda s=shard: self._uws_worker(s)),
                name=f"{label}-watchdog"))
        for tenant in self.tenants:
            self.scanner.start_tenant(tenant)
        self.vnodes.start()
        self._processes.append(self.spawn(  # repro: allow[C006] syncer-wide sampler, not tenant work
            self._memory_sampler(),
            name=f"{self.name}-mem-sampler"))

    def stop_processing(self):
        """Stop reconciling but keep informer caches warm.

        This is what a deposed HA leader does on losing its lease: the
        replica drops back to standby (warm caches, no writes) and can
        take over again later.  Work queues stay open so the backlog is
        there for the next leader term.
        """
        self._stopped = True
        if not self._started:
            return
        self._started = False
        self.super_writer.stop()
        self.scanner.stop()
        self.vnodes.stop()
        self.health.stop()
        for process in self._processes:
            process.interrupt("syncer stopped processing")
        self._processes = []
        for worker in list(self.worker_processes.values()):
            worker.interrupt("syncer stopped processing")
        self.worker_processes = {}

    def stop_informers(self):
        """Stop every informer and drop its cache.

        A crashed replica loses all in-memory state; a later
        :meth:`start_informers` relists everything from scratch.
        """
        self.super_informers.stop_all()
        for registration in self.tenants.values():
            registration.informers.stop_all()
        for informer in self.super_informers.informers.values():
            self._reset_informer(informer)
        for registration in self.tenants.values():
            for informer in registration.informers.informers.values():
                self._reset_informer(informer)
        self._informers_started = False

    @staticmethod
    def _reset_informer(informer):
        informer.cache.replace([])
        informer.reflector.has_synced = False
        informer.reflector._stopped = False
        informer.reflector._process = None

    def stop(self):
        self.stop_processing()
        self.downward.shutdown()
        self.upward.shutdown()
        self.stop_informers()

    def wait_for_sync(self):
        """Coroutine: block until every informer cache is primed."""
        yield from self.super_informers.wait_for_sync()
        for registration in self.tenants.values():
            yield from registration.informers.wait_for_sync()

    def simulate_restart(self):
        """Coroutine: drop all caches and relist (syncer restart, §IV-C).

        Returns the simulated seconds it took to re-prime every cache.
        """
        started = self.sim.now
        self.stop_informers()
        self.start_informers()
        yield from self.wait_for_sync()
        return self.sim.now - started

    def rebuild_namespace_origins(self):
        """Repopulate the super-namespace origin map from the warm cache.

        The map is in-memory only; a standby that just took over needs
        it before upward Events/Endpoints can be routed to their tenant.
        """
        for namespace in self.super_informer("namespaces").cache.items():
            annotations = namespace.metadata.annotations or {}
            vc_key = annotations.get(ANNOTATION_VC)
            tenant_ns = annotations.get(ANNOTATION_TENANT_NAMESPACE)
            if vc_key and tenant_ns is not None:
                name = namespace.metadata.name
                self._namespace_origin[name] = (vc_key, tenant_ns)
                self._ensured_namespaces.add(name)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _supervise(self, label, factory):
        """Watchdog: keep one worker alive under ``label``.

        A worker that dies (chaos crash, unexpected exception) while the
        syncer is running is respawned after a crash-loop backoff; a long
        stable run resets the backoff.  Restart counts are exported via
        :attr:`worker_restarts` and the ``worker_restarts`` counter.
        """
        cfg = self.config.syncer
        backoff = JitteredBackoff(self.sim.rng, cfg.watchdog_base_backoff,
                                  cfg.watchdog_max_backoff, jitter=0.0)
        while not self._stopped:
            worker = self.spawn(factory(), name=label)
            self.worker_processes[label] = worker
            started = self.sim.now
            try:
                yield worker
            except Interrupt:
                return  # the syncer is stopping; the worker is handled there
            except Exception:
                self.metrics_inc("worker_crashes")
            finally:
                if self.worker_processes.get(label) is worker:
                    del self.worker_processes[label]
            if self._stopped:
                return
            self.worker_restarts[label] = (
                self.worker_restarts.get(label, 0) + 1)
            self.metrics_inc("worker_restarts")
            if self.sim.now - started >= cfg.watchdog_stable_after:
                backoff.reset()
            try:
                yield self.sim.timeout(backoff.next())
            except Interrupt:
                return

    def _queue_get(self, queue, shard):
        if self.dispatch_shards > 1:
            return queue.get(shard)
        return queue.get()

    def _dws_worker(self, shard=0):
        cfg = self.config.syncer
        dws_lock = self.dws_locks[shard % len(self.dws_locks)]
        while not self._stopped:
            try:
                tenant, item, _enqueued_at = yield self._queue_get(
                    self.downward, shard)
            except (ShutDown, Interrupt):
                return
            plural, key = item
            if not self.health.allow(tenant):
                # Circuit open: fail fast so this shared worker stays
                # available to healthy tenants; the item is parked and
                # re-enqueued when the tenant's probe succeeds.
                self.health.park(tenant, "downward", item)
                self.downward.done(tenant, item)
                continue
            try:
                with self._telemetry.span("syncer.dws", tenant=tenant,
                                          resource=plural):
                    # Serialized dequeue critical section (lock contention
                    # is the syncer's throughput limiter under burst); one
                    # lock per dispatch shard.
                    yield dws_lock.acquire()
                    try:
                        yield self.sim.timeout(cfg.dws_dequeue_cs)  # repro: allow[C001] modeled dequeue critical-section cost; contention is the measured effect
                    finally:
                        dws_lock.release()
                    self.cpu.charge(cfg.dws_dequeue_cs,
                                    activity="dws-dequeue")
                    self.cpu.charge(cfg.per_item_cpu_overhead,
                                    activity="serde")
                    if plural == "pods":
                        self.trace_store.mark(tenant, key, "dws_dequeue",
                                              self.sim.now)
                    yield self.sim.timeout(cfg.dws_process)
                    self.cpu.charge(cfg.dws_process, activity="dws-process")
                    reconciler = (self.crd_sync.reconciler_for(tenant,
                                                               plural)
                                  or self.downward_reconcilers.get(plural))
                    if reconciler is not None:
                        yield from reconciler.sync_down(tenant, key)
                    self.health.record_success(tenant)
                    self._items_dws.inc()
            except Interrupt:
                return
            except ApiError as exc:
                self.metrics_inc("dws_api_error")
                if self.health.record_failure(tenant, exc):
                    self.health.park(tenant, "downward", item)
                else:
                    self.downward.add(tenant, item)
            finally:
                self.downward.done(tenant, item)

    def _uws_worker(self, shard=0):
        cfg = self.config.syncer
        uws_lock = self.uws_locks[shard % len(self.uws_locks)]
        while not self._stopped:
            try:
                tenant, item, _enqueued_at = yield self._queue_get(
                    self.upward, shard)
            except (ShutDown, Interrupt):
                return
            plural, key = item
            if not self.health.allow(tenant):
                self.health.park(tenant, "upward", item)
                self.upward.done(tenant, item)
                continue
            try:
                with self._telemetry.span("syncer.uws", tenant=tenant,
                                          resource=plural):
                    yield uws_lock.acquire()
                    try:
                        yield self.sim.timeout(cfg.uws_dequeue_cs)  # repro: allow[C001] modeled dequeue critical-section cost; contention is the measured effect
                    finally:
                        uws_lock.release()
                    self.cpu.charge(cfg.uws_dequeue_cs,
                                    activity="uws-dequeue")
                    self.cpu.charge(cfg.per_item_cpu_overhead,
                                    activity="serde")
                    if plural == "pods":
                        super_pod = self.super_informer("pods").cache.get(
                            key)
                        if super_pod is not None:
                            origin = tenant_origin(super_pod)
                            if (origin is not None
                                    and super_pod.status.is_ready):
                                t_key = (f"{origin[1]}/{origin[2]}"
                                         if origin[1] else origin[2])
                                self.trace_store.mark(tenant, t_key,
                                                      "uws_dequeue",
                                                      self.sim.now)
                    yield self.sim.timeout(cfg.uws_process)
                    self.cpu.charge(cfg.uws_process, activity="uws-process")
                    reconciler = self.upward_reconcilers.get(plural)
                    if reconciler is not None:
                        yield from reconciler.sync_up(tenant, key)
                    self.health.record_success(tenant)
                    self._items_uws.inc()
            except Interrupt:
                return
            except ApiError as exc:
                self.metrics_inc("uws_api_error")
                if self.health.record_failure(tenant, exc):
                    self.health.park(tenant, "upward", item)
                else:
                    self.upward.add(tenant, item)
            finally:
                self.upward.done(tenant, item)

    def _memory_sampler(self):
        while not self._stopped:
            try:
                yield self.sim.timeout(0.25)
            except Interrupt:
                return
            self.mem.snapshot(self.sim.now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self):
        return {
            "tenants": len(self.tenants),
            "downward": self.downward.stats(),
            "upward": self.upward.stats(),
            "dws_lock_contentions": sum(lock.contentions
                                        for lock in self.dws_locks),
            "uws_lock_contentions": sum(lock.contentions
                                        for lock in self.uws_locks),
            "dispatch_shards": self.dispatch_shards,
            "downward_batching": self.super_writer.stats(),
            "cpu_seconds": self.cpu.seconds,
            "peak_memory_bytes": self.mem.peak,
            "traces": len(self.trace_store),
            "counters": dict(self.counters),
            "health": self.health.stats(),
            "parked_items": self.health.parked_count(),
            "worker_restarts": dict(self.worker_restarts),
        }
