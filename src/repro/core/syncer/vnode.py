"""vNode management (paper §III-C, Fig. 6).

Each virtual node object in a tenant control plane represents a *real*
physical node of the super cluster, one-to-one — unlike virtual kubelet,
where many pods collapse onto one synthetic node and scheduling
constraints like anti-affinity become invisible.  The syncer:

- creates a vNode in a tenant the first time one of its pods is bound to
  that physical node;
- tracks pod-to-vNode bindings and removes a vNode once its last pod is
  gone;
- broadcasts physical-node heartbeats to every tenant's matching vNode.
"""

from repro.apiserver.errors import AlreadyExists, ApiError, NotFound
from repro.simkernel.errors import Interrupt

VNODE_LABEL = "tenancy.x-k8s.io/vnode"


class VNodeManager:
    """Tracks bindings and reconciles vNode objects in tenant CPs."""

    def __init__(self, syncer, heartbeat_interval=10.0):
        self.syncer = syncer
        self.sim = syncer.sim
        self.heartbeat_interval = heartbeat_interval
        # tenant -> node_name -> set(pod_key)
        self._bindings = {}
        # (tenant, node_name) -> True once created in the tenant CP
        self._created = set()
        self._heartbeat_process = None
        self.heartbeats_sent = 0
        self._heartbeats_counter = syncer._telemetry.counter(
            "vnode_heartbeats_total", "vNode heartbeat status writes",
            labels=("syncer",)).labels(syncer=syncer.name)

    # ------------------------------------------------------------------
    # Binding bookkeeping (called from the upward pod reconciler)
    # ------------------------------------------------------------------

    def pod_bound(self, tenant, pod_key, node_name):
        tenant_nodes = self._bindings.setdefault(tenant, {})
        tenant_nodes.setdefault(node_name, set()).add(pod_key)

    def pod_deleted(self, tenant, pod_key):
        tenant_nodes = self._bindings.get(tenant, {})
        for node_name, pods in list(tenant_nodes.items()):
            if pod_key in pods:
                pods.discard(pod_key)
                if not pods:
                    del tenant_nodes[node_name]
                    self.syncer.spawn(
                        self._remove_vnode(tenant, node_name),
                        name=f"vnode-remove-{tenant}-{node_name}",
                        affinity=tenant)

    def bound_pods(self, tenant, node_name):
        return set(self._bindings.get(tenant, {}).get(node_name, ()))

    def vnodes_for(self, tenant):
        return sorted(self._bindings.get(tenant, {}))

    def rebuild(self, tenant):
        """Repopulate bindings from warm informer caches (HA takeover).

        Binding state is in-memory only, so a standby that just became
        leader starts empty — and an empty expected-set would make
        :meth:`reconcile_tenant` delete every *live* vNode.  Rebuild the
        expected state from the super pods cache (scheduled, managed pods
        owned by this tenant) and mark vNodes already present in the
        tenant control plane as created.
        """
        from .conversion import (
            INDEX_TENANT,
            is_managed,
            tenant_index,
            tenant_key,
        )

        registration = self.syncer.tenants.get(tenant)
        if registration is None:
            return
        super_cache = self.syncer.super_informer("pods").cache
        if self.syncer.config.syncer.use_cache_indexes:
            super_cache.add_index(INDEX_TENANT, tenant_index)
            candidates = super_cache.by_index(INDEX_TENANT, tenant)
        else:
            candidates = super_cache.items()
        bindings = {}
        for pod in candidates:
            if not is_managed(pod) or not self.syncer.owns(tenant, pod):
                continue
            if not pod.spec.node_name or pod.metadata.deletion_timestamp:
                continue
            t_key = tenant_key(pod)
            if t_key is None:
                continue
            bindings.setdefault(pod.spec.node_name, set()).add(t_key)
        self._bindings[tenant] = bindings
        self._created = {(t, n) for (t, n) in self._created if t != tenant}
        tenant_nodes = self.syncer.tenant_informer(tenant, "nodes").cache
        for node in tenant_nodes.items():
            if (node.metadata.labels or {}).get(VNODE_LABEL) == "true":
                self._created.add((tenant, node.metadata.name))

    # ------------------------------------------------------------------
    # vNode object lifecycle
    # ------------------------------------------------------------------

    def ensure_vnode(self, tenant, node_name):
        """Coroutine: create the tenant's vNode for a physical node."""
        if (tenant, node_name) in self._created:
            return
        registration = self.syncer.tenants.get(tenant)
        if registration is None:
            return
        super_node = self.syncer.super_informer("nodes").cache.get_copy(
            node_name)
        if super_node is None:
            return
        vnode = super_node
        vnode.metadata.resource_version = None
        vnode.metadata.uid = None
        vnode.metadata.labels = dict(vnode.metadata.labels or {})
        vnode.metadata.labels[VNODE_LABEL] = "true"
        # The vNode advertises the vn-agent port instead of the kubelet
        # port, so tenant log/exec requests are intercepted (§III-B(3)).
        vnode.status.daemon_endpoints = {
            "kubeletEndpoint": {"Port": self.syncer.vn_agent_port}}
        self._created.add((tenant, node_name))
        try:
            yield from registration.client.create(vnode)
        except AlreadyExists:
            pass
        except ApiError:
            self._created.discard((tenant, node_name))

    def reconcile_tenant(self, tenant):
        """Coroutine: converge the tenant's vNode set with the bindings.

        Used by the periodic scanner to remediate stale vNodes: a vNode
        whose last pod is gone but whose removal was missed, or a bound
        node whose vNode creation failed.  Returns the number fixed.
        """
        registration = self.syncer.tenants.get(tenant)
        if registration is None:
            return 0
        expected = set(self.vnodes_for(tenant))
        cache = self.syncer.tenant_informer(tenant, "nodes").cache
        if self.syncer.config.syncer.use_cache_indexes:
            vnodes = cache.by_label(VNODE_LABEL, "true")
        else:
            vnodes = [node for node in cache.items()
                      if (node.metadata.labels or {}).get(VNODE_LABEL)
                      == "true"]
        present = {node.metadata.name for node in vnodes}
        fixed = 0
        for name in sorted(present - expected):
            fixed += 1
            yield from self._remove_vnode(tenant, name)
        for name in sorted(expected - present):
            fixed += 1
            self._created.discard((tenant, name))
            yield from self.ensure_vnode(tenant, name)
        return fixed

    def _remove_vnode(self, tenant, node_name):
        if self.bound_pods(tenant, node_name):
            return  # re-bound in the meantime
        registration = self.syncer.tenants.get(tenant)
        self._created.discard((tenant, node_name))
        if registration is None:
            return
        try:
            yield from registration.client.delete("nodes", node_name)
        except (NotFound, ApiError):
            pass

    # ------------------------------------------------------------------
    # Heartbeat broadcast
    # ------------------------------------------------------------------

    def start(self):
        self._heartbeat_process = self.syncer.spawn(
            self._heartbeat_loop(), name="vnode-heartbeats")

    def stop(self):
        if self._heartbeat_process is not None:
            self._heartbeat_process.interrupt("vnode manager stopped")

    def _heartbeat_loop(self):
        cfg = self.syncer.config.syncer
        while True:
            try:
                yield self.sim.timeout(self.heartbeat_interval)
            except Interrupt:
                return
            # One super-node cache lookup (and deep copy) per distinct
            # node per tick, shared across all tenants bound to it — the
            # old per-(tenant, node) lookups made the tick
            # O(nodes x tenants) in cache gets.
            super_nodes_this_tick = {}
            super_node_cache = self.syncer.super_informer("nodes").cache
            for tenant, nodes in list(self._bindings.items()):
                registration = self.syncer.tenants.get(tenant)
                if registration is None:
                    continue
                if not self.syncer.health.allow(tenant):
                    # Circuit open: skip heartbeats into a dead tenant CP
                    # instead of eating client retries per vNode per tick.
                    continue
                for node_name in list(nodes):
                    if node_name in super_nodes_this_tick:
                        super_node = super_nodes_this_tick[node_name]
                    else:
                        super_node = super_node_cache.get_copy(node_name)
                        super_nodes_this_tick[node_name] = super_node
                    if super_node is None:
                        continue
                    yield self.sim.timeout(cfg.vnode_heartbeat_write)
                    self.syncer.cpu.charge(cfg.vnode_heartbeat_write,
                                           activity="vnode-heartbeat")
                    try:
                        vnode = yield from registration.client.get(
                            "nodes", node_name)
                    except ApiError:
                        continue
                    vnode.status.conditions = [
                        c.copy() for c in super_node.status.conditions]
                    for condition in vnode.status.conditions:
                        condition.last_heartbeat_time = self.sim.now
                    try:
                        yield from registration.client.update_status(vnode)
                        self.heartbeats_sent += 1
                        self._heartbeats_counter.inc()
                    except ApiError:
                        continue
