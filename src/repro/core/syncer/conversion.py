"""Object translation between tenant control planes and the super cluster.

Downward-synced objects land in a super-cluster namespace prefixed with
the owner VC's name plus a short hash of its UID (paper §III-B(2)), and
carry annotations recording their tenant origin so upward reconcilers
and the vn-agent can map them back.
"""

from ..crd import super_name, super_namespace

ANNOTATION_VC = "tenancy.x-k8s.io/vc"
ANNOTATION_TENANT_NAMESPACE = "tenancy.x-k8s.io/tenant-namespace"
ANNOTATION_TENANT_NAME = "tenancy.x-k8s.io/tenant-name"
ANNOTATION_TENANT_UID = "tenancy.x-k8s.io/tenant-uid"
LABEL_MANAGED_BY = "tenancy.x-k8s.io/managed-by"
MANAGED_BY_VALUE = "vc-syncer"

# Secondary-index names registered on the syncer's super-cluster caches
# (see clientgo.cache.ObjectCache.add_index).
INDEX_TENANT = "tenant"
INDEX_NODE = "node"


def tenant_index(obj):
    """Index synced super objects by their owner VC key."""
    annotations = obj.metadata.annotations or {}
    vc_key = annotations.get(ANNOTATION_VC)
    return (vc_key,) if vc_key else ()


def node_index(obj):
    """Index pods by the node they are bound to."""
    node_name = getattr(getattr(obj, "spec", None), "node_name", None)
    return (node_name,) if node_name else ()


def to_super(obj, vc):
    """Translate a tenant object into its super-cluster representation."""
    translated = obj.copy()
    meta = translated.metadata
    tenant_namespace = meta.namespace
    if type(obj).NAMESPACED:
        meta.namespace = super_namespace(vc, tenant_namespace)
    else:
        meta.name = super_name(vc, meta.name)
    meta.uid = None
    meta.resource_version = None
    meta.creation_timestamp = None
    meta.owner_references = []
    meta.labels = dict(meta.labels or {})
    meta.labels[LABEL_MANAGED_BY] = MANAGED_BY_VALUE
    meta.annotations = dict(meta.annotations or {})
    meta.annotations[ANNOTATION_VC] = vc.key
    meta.annotations[ANNOTATION_TENANT_NAMESPACE] = tenant_namespace or ""
    meta.annotations[ANNOTATION_TENANT_NAME] = obj.metadata.name
    meta.annotations[ANNOTATION_TENANT_UID] = obj.metadata.uid or ""
    return translated


def to_super_pod(pod, vc):
    """Pods additionally drop the tenant binding — the super scheduler
    binds the super pod to a physical node."""
    translated = to_super(pod, vc)
    translated.spec.node_name = None
    translated.status = type(pod.status)()
    return translated


def tenant_origin(super_obj):
    """Return (vc_key, tenant_namespace, tenant_name) or None."""
    annotations = super_obj.metadata.annotations or {}
    vc_key = annotations.get(ANNOTATION_VC)
    if not vc_key:
        return None
    return (
        vc_key,
        annotations.get(ANNOTATION_TENANT_NAMESPACE) or None,
        annotations.get(ANNOTATION_TENANT_NAME),
    )


def tenant_key(super_obj):
    """The tenant-side ``namespace/name`` key of a synced super object."""
    origin = tenant_origin(super_obj)
    if origin is None:
        return None
    _vc, namespace, name = origin
    return f"{namespace}/{name}" if namespace else name


def is_managed(super_obj):
    labels = super_obj.metadata.labels or {}
    return labels.get(LABEL_MANAGED_BY) == MANAGED_BY_VALUE


def super_key_for(obj_type, vc, tenant_obj_key):
    """Map a tenant object key to the super-cluster key."""
    if "/" in tenant_obj_key:
        namespace, name = tenant_obj_key.split("/", 1)
        return f"{super_namespace(vc, namespace)}/{name}"
    if obj_type.NAMESPACED:
        raise ValueError(f"namespaced key without namespace: {tenant_obj_key}")
    return super_name(vc, tenant_obj_key)


def specs_equivalent(tenant_obj, super_obj, ignore_fields=("nodeName",)):
    """Compare tenant vs super specs, ignoring syncer-managed fields."""
    tenant_spec = getattr(tenant_obj, "spec", None)
    super_spec = getattr(super_obj, "spec", None)
    if tenant_spec is None or super_spec is None:
        return True
    a = tenant_spec.to_dict() if hasattr(tenant_spec, "to_dict") else dict(
        tenant_spec)
    b = super_spec.to_dict() if hasattr(super_spec, "to_dict") else dict(
        super_spec)
    for field in ignore_fields:
        a.pop(field, None)
        b.pop(field, None)
    return a == b
