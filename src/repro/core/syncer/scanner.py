"""Periodic scanner: remediation of permanent state mismatches.

Kubernetes controllers are eventually consistent; rare race/failure
combinations can leave a synced object permanently inconsistent.  Rather
than enumerating every failure mode, the syncer periodically scans all
synchronized objects and re-enqueues any mismatch (paper §III-C).  The
paper reports scanning 10,000 Pods takes under two seconds with one
scanning thread per tenant — the cost model here reproduces that.
"""

from repro.simkernel.errors import Interrupt

from .conversion import (
    INDEX_TENANT,
    is_managed,
    specs_equivalent,
    super_key_for,
    tenant_index,
    tenant_key,
)


class PeriodicScanner:
    """One scanning process per tenant (as in the paper's evaluation)."""

    def __init__(self, syncer, interval=None):
        self.syncer = syncer
        self.sim = syncer.sim
        self.interval = interval or syncer.config.syncer.scan_interval
        self._processes = {}
        self._telemetry = syncer._telemetry
        self._scans_counter = self._telemetry.counter(
            "syncer_scans_total", "periodic tenant scans completed",
            labels=("syncer",)).labels(syncer=syncer.name)
        self.scans_completed = 0
        self.mismatches_found = 0
        self.last_scan_duration = 0.0
        self.objects_scanned_total = 0
        self.upward_status_mismatches = 0
        self.vnode_mismatches = 0

    def start_tenant(self, tenant):
        if tenant in self._processes:
            return
        self._processes[tenant] = self.syncer.spawn(
            self._scan_loop(tenant), name=f"scanner-{tenant}",
            affinity=tenant)

    def stop_tenant(self, tenant):
        process = self._processes.pop(tenant, None)
        if process is not None:
            process.interrupt("scanner stopped")

    def stop(self):
        for tenant in list(self._processes):
            self.stop_tenant(tenant)

    def _scan_loop(self, tenant):
        while True:
            try:
                yield self.sim.timeout(self.interval)
                yield from self.scan_tenant(tenant)
            except Interrupt:
                return

    def _super_candidates(self, super_cache, tenant, cfg):
        """Coroutine: this tenant's super objects, charging filter cost.

        With indexes on, the by-tenant index returns exactly the tenant's
        objects; with them off, every cached object is a candidate the
        scan must examine and discard.  Either way each candidate costs
        ``scan_filter_per_object``, so the index's win is visible in
        simulated time, not just in lookup counters.
        """
        if cfg.use_cache_indexes:
            # Idempotent: covers lazily-created caches (e.g. synced CRDs)
            # that were not wired in _setup_super_informers.
            super_cache.add_index(INDEX_TENANT, tenant_index)
            candidates = super_cache.by_index(INDEX_TENANT, tenant)
        else:
            candidates = super_cache.items()
        filter_cost = cfg.scan_filter_per_object * len(candidates)
        if filter_cost:
            yield self.sim.timeout(filter_cost)
            self.syncer.cpu.charge(filter_cost, activity="scan-filter")
        return candidates

    def scan_tenant(self, tenant):
        """Coroutine: one full scan of a tenant's synchronized objects."""
        if tenant not in self.syncer.tenants:
            return 0
        with self._telemetry.span("syncer.scan", tenant=tenant):
            mismatches = yield from self._scan_tenant(tenant)
        self._scans_counter.inc()
        return mismatches

    def _scan_tenant(self, tenant):
        registration = self.syncer.tenants.get(tenant)
        if registration is None:
            return 0
        started = self.sim.now
        cfg = self.syncer.config.syncer
        vc = registration.vc
        mismatches = 0
        scanned = 0

        for plural in self.syncer.downward_plurals_for(tenant):
            reconciler = (self.syncer.crd_sync.reconciler_for(tenant, plural)
                          or self.syncer.downward_reconcilers.get(plural))
            if reconciler is None or reconciler.obj_type is None:
                continue
            tenant_cache = self.syncer.tenant_informer(tenant, plural).cache
            super_cache = self.syncer.super_informer(plural).cache

            # Tenant -> super direction: everything must exist downstream.
            for obj in tenant_cache.items():
                scanned += 1
                yield self.sim.timeout(cfg.scan_per_object)
                self.syncer.cpu.charge(cfg.scan_per_object, activity="scan")
                if plural == "namespaces":
                    continue  # handled by its dedicated reconciler shape
                skey = super_key_for(reconciler.obj_type, vc, obj.key)
                super_obj = super_cache.get(skey)
                if super_obj is None or not specs_equivalent(obj, super_obj):
                    mismatches += 1
                    self.syncer.enqueue_downward(tenant, plural, obj.key)

            # Super -> tenant direction: no orphans left behind.  The
            # tenant index narrows the sweep to this tenant's objects
            # instead of walking every super object for every tenant.
            candidates = yield from self._super_candidates(
                super_cache, tenant, cfg)
            for super_obj in candidates:
                if not is_managed(super_obj):
                    continue
                origin_key = tenant_key(super_obj)
                if origin_key is None:
                    continue
                if not self.syncer.owns(tenant, super_obj):
                    continue
                scanned += 1
                yield self.sim.timeout(cfg.scan_per_object)
                self.syncer.cpu.charge(cfg.scan_per_object, activity="scan")
                if origin_key not in tenant_cache:
                    mismatches += 1
                    self.syncer.enqueue_downward(tenant, plural, origin_key)

        # Upward direction: pod statuses the UWS may have missed (e.g. a
        # super pod went Ready while the tenant CP was unreachable and
        # the retry budget ran out).
        tenant_pods = self.syncer.tenant_informer(tenant, "pods").cache
        super_pods = self.syncer.super_informer("pods").cache
        pod_candidates = yield from self._super_candidates(
            super_pods, tenant, cfg)
        for super_obj in pod_candidates:
            if not is_managed(super_obj):
                continue
            if not self.syncer.owns(tenant, super_obj):
                continue
            origin_key = tenant_key(super_obj)
            if origin_key is None:
                continue
            tenant_obj = tenant_pods.get(origin_key)
            if tenant_obj is None:
                continue  # orphan: the downward scan handles it
            scanned += 1
            yield self.sim.timeout(cfg.scan_per_object)
            self.syncer.cpu.charge(cfg.scan_per_object, activity="scan")
            if (super_obj.status.phase != tenant_obj.status.phase
                    or super_obj.status.is_ready
                    != tenant_obj.status.is_ready):
                mismatches += 1
                self.upward_status_mismatches += 1
                self.syncer.enqueue_upward(tenant, "pods", super_obj.key)

        # vNode direction: tenant vNodes must track current bindings
        # (a missed removal leaves a stale vNode; a failed create leaves
        # a bound node without one).
        fixed = yield from self.syncer.vnodes.reconcile_tenant(tenant)
        if fixed:
            mismatches += fixed
            self.vnode_mismatches += fixed

        self.scans_completed += 1
        self.mismatches_found += mismatches
        self.objects_scanned_total += scanned
        self.last_scan_duration = self.sim.now - started
        return mismatches
