"""The centralized resource syncer."""

from .conversion import tenant_key, tenant_origin, to_super, to_super_pod
from .ha import SyncerHA
from .reconcilers import DOWNWARD_TYPES, UPWARD_TYPES
from .scanner import PeriodicScanner
from .syncer import Syncer, TenantRegistration
from .tracing import PHASES, PodTrace, TraceStore
from .vnode import VNodeManager

__all__ = [
    "DOWNWARD_TYPES",
    "PHASES",
    "PeriodicScanner",
    "PodTrace",
    "Syncer",
    "SyncerHA",
    "TenantRegistration",
    "TraceStore",
    "UPWARD_TYPES",
    "VNodeManager",
    "tenant_key",
    "tenant_origin",
    "to_super",
    "to_super_pod",
]
