"""CRD synchronization (paper §V, future work #1).

"The super cluster may offer extended scheduling capabilities by
introducing new CRDs. ... A tenant user cannot use the extended
scheduling capability unless the syncer starts to synchronize the
required CRD from the tenant control plane."

This module adds exactly that: the super-cluster administrator
allowlists a CRD for a tenant; the syncer then

1. registers the dynamic type with the super cluster's apiserver (if a
   compatible registration does not exist yet),
2. watches the tenant's custom objects and synchronizes them downward
   into the tenant's prefixed namespaces with the usual origin
   annotations, and
3. includes them in the periodic scanner's remediation sweep.
"""

from repro.apiserver.errors import BadRequest

from .reconcilers import GenericDownward


class CrdSyncError(BadRequest):
    """The CRD cannot be synchronized (conflicting registration)."""


class CrdSyncManager:
    """Per-tenant registry of synchronized CRD types."""

    def __init__(self, syncer):
        self.syncer = syncer
        # (tenant, plural) -> GenericDownward over the dynamic type
        self._reconcilers = {}
        # plural -> kind, to detect cross-tenant conflicts
        self._registered_kinds = {}

    def enable(self, tenant, crd):
        """Start synchronizing a tenant's CRD downward.

        ``crd`` is the CustomResourceDefinition installed in the tenant
        control plane.  Returns the dynamic type used on the super side.
        """
        registration = self.syncer.tenants.get(tenant)
        if registration is None:
            raise CrdSyncError(f"unknown tenant {tenant!r}")
        plural = crd.spec.names.plural
        kind = crd.spec.names.kind
        if not plural or not kind:
            raise CrdSyncError("CRD has no plural/kind names")
        if (tenant, plural) in self._reconcilers:
            return self._reconcilers[(tenant, plural)].obj_type

        super_registry = self.syncer.super_cluster.api.registry
        if super_registry.has(plural):
            existing_kind = self._registered_kinds.get(plural)
            if existing_kind is not None and existing_kind != kind:
                raise CrdSyncError(
                    f"resource {plural!r} already synchronized with kind "
                    f"{existing_kind!r}; conflicting kind {kind!r}")
            obj_type = super_registry.get(plural)
        else:
            obj_type = super_registry.register_crd(crd)
        self._registered_kinds[plural] = kind

        # Watch the tenant's custom objects and feed the downward queue.
        informer = registration.informers.informer(plural)
        self.syncer._wire_downward_handlers(tenant, plural, informer)
        if self.syncer._started and informer.reflector._process is None:
            informer.start()
        # The reconcilers compare against the super-side cache too.
        super_informer = self.syncer.super_informer(plural)
        if (self.syncer._started
                and super_informer.reflector._process is None):
            super_informer.start()

        reconciler = GenericDownward(self.syncer, plural, obj_type)
        self._reconcilers[(tenant, plural)] = reconciler
        return obj_type

    def disable(self, tenant, plural):
        """Stop synchronizing (existing super objects are left in place
        for the scanner/administrator to clean up)."""
        self._reconcilers.pop((tenant, plural), None)

    def reconciler_for(self, tenant, plural):
        return self._reconcilers.get((tenant, plural))

    def plurals_for(self, tenant):
        return sorted(plural for (t, plural) in self._reconcilers
                      if t == tenant)

    def drop_tenant(self, tenant):
        for key in [key for key in self._reconcilers if key[0] == tenant]:
            del self._reconcilers[key]
