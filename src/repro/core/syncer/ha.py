"""Active/standby syncer replication (DESIGN.md §10).

The paper's syncer is a single process: it is stateless with respect to
durable data (everything rebuilds from list+watch), but while it is down
no tenant state converges.  :class:`SyncerHA` runs N syncer replicas
behind one lease:

- every replica registers every tenant and — with ``warm_standby`` —
  runs its informers, so caches are primed on all replicas;
- exactly one replica (the lease holder) runs workers, scanners and
  heartbeats; the others idle on warm caches;
- the winner of an election performs a *takeover*: rebuild in-memory-only
  state (vNode bindings, namespace origins) from its caches, issue a
  fence barrier so any deposed leader's in-flight writes die first, then
  start processing and replay one full scan per tenant to pick up
  whatever the old leader dropped mid-flight;
- the fencing token is the lease's ``lease_transitions`` counter, so a
  deposed leader's writes carry a strictly lower token and are rejected
  by the store (:class:`~repro.apiserver.errors.FencingConflict`).

``warm_standby=False`` is the ablation: standbys keep no caches and a
takeover pays the full cold relist, which is what the MTTR benchmark
compares against.
"""

from repro.clientgo import LeaderElector
from repro.simkernel.errors import Interrupt

from .syncer import Syncer


class SyncerHA:
    """N syncer replicas, one lease, hot (or cold) standby failover."""

    def __init__(self, sim, super_cluster, config=None, replicas=2,
                 warm_standby=True, lease_name="syncer-leader",
                 **syncer_kwargs):
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.sim = sim
        self.super_cluster = super_cluster
        self.warm_standby = warm_standby
        self.lease_name = lease_name
        self.domain = f"syncer/{lease_name}"
        self.replicas = []
        self.electors = []
        self.active = None
        # Failover measurement: every completed takeover appends a record
        # with elected/serving timestamps and (when a leader loss preceded
        # it) the MTTR from loss to serving.
        self.failovers = []
        self._last_leader_loss = None
        self._takeover_process = None

        syncer_kwargs.setdefault("config", config)
        for index in range(replicas):
            syncer = Syncer(sim, super_cluster,
                            name=f"syncer-{index}", **syncer_kwargs)
            syncer.ha_domain = self.domain
            self.replicas.append(syncer)
        cfg = (config or self.replicas[0].config).syncer
        for syncer in self.replicas:
            elector = LeaderElector(
                sim, syncer.super_client, lease_name, syncer.name,
                lease_duration=cfg.lease_duration,
                renew_interval=cfg.lease_renew_interval,
                retry_interval=cfg.lease_retry_interval,
                jitter=cfg.lease_jitter,
                on_started_leading=(
                    lambda token, s=syncer: self._on_started(s, token)),
                on_stopped_leading=(
                    lambda reason, s=syncer: self._on_stopped(s, reason)),
            )
            self.electors.append(elector)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        if self.warm_standby:
            for syncer in self.replicas:
                syncer.start_informers()
        for elector in self.electors:
            elector.start()

    def stop(self):
        for elector in self.electors:
            elector.stop(release=True)
        for syncer in self.replicas:
            syncer.stop()
        self.active = None

    # ------------------------------------------------------------------
    # Tenant fan-out (every replica tracks every tenant)
    # ------------------------------------------------------------------

    def register_tenant(self, vc, control_plane, weight=None):
        for syncer in self.replicas:
            syncer.register_tenant(vc, control_plane, weight=weight)

    def unregister_tenant(self, tenant):
        for syncer in self.replicas:
            syncer.unregister_tenant(tenant)

    drop_tenant = unregister_tenant

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def elector_for(self, syncer):
        return self.electors[self.replicas.index(syncer)]

    def leader(self):
        """The replica currently *serving* (post-takeover), or None."""
        return self.active

    @property
    def syncer(self):
        """Best current replica for read paths: the serving leader, a
        leader-elect mid-takeover, else replica 0 (warm caches)."""
        if self.active is not None:
            return self.active
        for syncer, elector in zip(self.replicas, self.electors):
            if elector.is_leader:
                return syncer
        return self.replicas[0]

    # ------------------------------------------------------------------
    # Election callbacks
    # ------------------------------------------------------------------

    def _on_started(self, syncer, token):
        self._takeover_process = self.sim.spawn(
            self._takeover(syncer, token),
            name=f"{syncer.name}-takeover")

    def _on_stopped(self, syncer, reason):
        self._last_leader_loss = self.sim.now
        syncer.stop_processing()
        if self.active is syncer:
            self.active = None

    def _takeover(self, syncer, token):
        """Coroutine: promote a standby to serving leader."""
        elector = self.elector_for(syncer)
        elected_at = self.sim.now
        loss_at = self._last_leader_loss
        syncer.fencing_token = token
        # Cold standby (or crashed replica): pay the full relist now.
        syncer.start_informers()
        yield from syncer.wait_for_sync()
        if not elector.is_leader:
            return  # lost the lease while syncing — stay standby
        # In-memory-only state is rebuilt from the warm caches before any
        # write: an empty vNode binding map would delete live vNodes.
        syncer.rebuild_namespace_origins()
        for tenant in list(syncer.tenants):
            syncer.vnodes.rebuild(tenant)
        # Fence barrier: advance the store's token floor so every
        # in-flight write from a deposed leader dies before we serve.
        from repro.apiserver.errors import ApiError
        try:
            yield from syncer.super_client.transaction(
                [], fencing=syncer.current_fence())
        except ApiError:
            return  # a newer leader fenced us out already
        if not elector.is_leader:
            return
        syncer.start_processing()
        self.active = syncer
        serving_at = self.sim.now
        record = {
            "identity": syncer.name,
            "token": token,
            "elected_at": elected_at,
            "serving_at": serving_at,
            "sync_seconds": serving_at - elected_at,
            "mttr": (serving_at - loss_at) if loss_at is not None else None,
        }
        self.failovers.append(record)
        # Startup scan: replay one full remediation sweep per tenant so
        # anything the old leader dropped mid-flight converges without
        # waiting a whole scan_interval.
        for tenant in list(syncer.tenants):
            if not elector.is_leader or syncer is not self.active:
                return
            try:
                yield from syncer.scanner.scan_tenant(tenant)
            except Interrupt:
                return

    # ------------------------------------------------------------------
    # Fault injection (chaos hooks)
    # ------------------------------------------------------------------

    def kill_leader(self, mode="crash", notice_delay=2.0):
        """Kill the serving leader.  Returns the victim (or None).

        ``mode="crash"``: the replica dies outright — elector stops
        renewing, processing stops, caches drop.  ``mode="partition"``:
        the replica keeps *believing* it leads for ``notice_delay``
        seconds past its lease deadline and keeps issuing writes with its
        stale token — the split-brain window fencing exists for.
        """
        victim = self.active
        if victim is None:
            return None
        elector = self.elector_for(victim)
        if mode == "crash":
            self._last_leader_loss = self.sim.now
            self.active = None
            elector.crash()
            victim.stop_processing()
            victim.stop_informers()
        elif mode == "partition":
            elector.partition(notice_delay=notice_delay)
        else:
            raise ValueError(f"unknown kill mode: {mode!r}")
        return victim

    def heal(self, syncer):
        """Undo a partition on ``syncer`` (it may re-campaign)."""
        self.elector_for(syncer).heal()

    def restart_replica(self, syncer):
        """Bring a crashed replica back as a (warm) standby."""
        if self.warm_standby:
            syncer.start_informers()
        elector = self.elector_for(syncer)
        elector.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self):
        return {
            "replicas": len(self.replicas),
            "warm_standby": self.warm_standby,
            "active": self.active.name if self.active else None,
            "failovers": list(self.failovers),
            "electors": {e.identity: e.stats() for e in self.electors},
            "fenced_writes": sum(s.super_writer.fenced_writes
                                 for s in self.replicas),
        }
