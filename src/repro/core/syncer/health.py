"""Per-tenant health tracking and circuit breaking for the syncer.

The centralized syncer shares its DWS/UWS worker pools across every
tenant, so one unreachable tenant control plane can tie workers up in
retry loops and stall *all* tenants — the blast-radius concern that
motivates per-tenant control planes in the first place (paper §III-C).

The :class:`HealthTracker` gives each tenant a circuit breaker:

- ``closed``: reconciles proceed normally; retryable API failures
  (503/504/429 — an unreachable control plane) count against the tenant.
- ``open``: after ``failure_threshold`` consecutive retryable failures,
  items for the tenant are *parked* instead of processed, so workers fail
  fast and stay available to healthy tenants.
- ``half-open``: after an (exponentially growing, capped, jittered)
  cooldown a background probe issues one cheap request against the tenant
  apiserver; success closes the circuit and re-enqueues every parked
  item, failure re-opens it with a longer cooldown.

Non-retryable errors (NotFound/Conflict races) never trip the breaker —
they are part of the eventual-consistency model, not a sign the control
plane is down.
"""

from repro.apiserver.errors import ApiError, is_retryable
from repro.simkernel.errors import Interrupt

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class TenantHealth:
    """Circuit state and failure accounting for one tenant."""

    __slots__ = ("state", "consecutive_failures", "failures_total",
                 "successes_total", "opens_total", "opened_at",
                 "open_duration", "degraded_since", "time_degraded",
                 "probes_total")

    def __init__(self):
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.failures_total = 0
        self.successes_total = 0
        self.opens_total = 0
        self.opened_at = None
        self.open_duration = 0.0
        self.degraded_since = None
        self.time_degraded = 0.0
        self.probes_total = 0


class HealthTracker:
    """Tracks every tenant's health and parks work for open circuits."""

    def __init__(self, syncer, enabled=True):
        self.syncer = syncer
        self.sim = syncer.sim
        self.enabled = enabled
        cfg = syncer.config.syncer
        self.failure_threshold = cfg.breaker_failure_threshold
        self.base_open_duration = cfg.breaker_open_duration
        self.max_open_duration = cfg.breaker_max_open_duration
        self._tenants = {}
        # tenant -> {"downward": set(), "upward": set()} of parked items.
        self._parked = {}
        self._probe_processes = {}
        self.parked_total = 0
        self.unparked_total = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def health(self, tenant):
        entry = self._tenants.get(tenant)
        if entry is None:
            entry = self._tenants[tenant] = TenantHealth()
        return entry

    def state(self, tenant):
        return self.health(tenant).state

    def allow(self, tenant):
        """Whether workers should process items for this tenant now."""
        if not self.enabled:
            return True
        return self.health(tenant).state == STATE_CLOSED

    def parked_count(self, tenant=None):
        if tenant is not None:
            buckets = self._parked.get(tenant)
            if buckets is None:
                return 0
            return sum(len(items) for items in buckets.values())
        return sum(len(items) for buckets in self._parked.values()
                   for items in buckets.values())

    def time_degraded(self, tenant):
        """Accumulated seconds with the circuit not closed (live value)."""
        entry = self.health(tenant)
        total = entry.time_degraded
        if entry.degraded_since is not None:
            total += self.sim.now - entry.degraded_since
        return total

    # ------------------------------------------------------------------
    # Outcome recording
    # ------------------------------------------------------------------

    def record_success(self, tenant):
        entry = self.health(tenant)
        entry.successes_total += 1
        entry.consecutive_failures = 0

    def record_failure(self, tenant, error=None):
        """Record a reconcile failure; opens the circuit at the threshold.

        Returns True when the failure tripped (or found) an open circuit,
        so callers can park the item instead of re-queuing it.
        """
        entry = self.health(tenant)
        entry.failures_total += 1
        if error is not None and isinstance(error, ApiError) \
                and not is_retryable(error):
            return not self.allow(tenant)
        entry.consecutive_failures += 1
        if (self.enabled and entry.state == STATE_CLOSED
                and entry.consecutive_failures >= self.failure_threshold):
            self._trip(tenant, entry)
        return not self.allow(tenant)

    def _trip(self, tenant, entry):
        entry.state = STATE_OPEN
        entry.opens_total += 1
        entry.opened_at = self.sim.now
        if entry.degraded_since is None:
            entry.degraded_since = self.sim.now
        entry.open_duration = entry.open_duration or self.base_open_duration
        self.syncer.metrics_inc("breaker_open")
        if tenant not in self._probe_processes:
            self._probe_processes[tenant] = self.syncer.spawn(
                self._probe_loop(tenant), name=f"breaker-probe-{tenant}",
                affinity=tenant)

    # ------------------------------------------------------------------
    # Parking
    # ------------------------------------------------------------------

    def park(self, tenant, direction, item):
        buckets = self._parked.setdefault(
            tenant, {"downward": set(), "upward": set()})
        if item not in buckets[direction]:
            buckets[direction].add(item)
            self.parked_total += 1

    def _unpark(self, tenant):
        buckets = self._parked.pop(tenant, None)
        if buckets is None:
            return
        for plural, key in sorted(buckets["downward"]):
            self.unparked_total += 1
            self.syncer.enqueue_downward(tenant, plural, key)
        for plural, key in sorted(buckets["upward"]):
            self.unparked_total += 1
            self.syncer.enqueue_upward(tenant, plural, key)

    def drop_tenant(self, tenant):
        """Forget a tenant (unregistered from the syncer)."""
        self._parked.pop(tenant, None)
        self._tenants.pop(tenant, None)
        process = self._probe_processes.pop(tenant, None)
        if process is not None:
            process.interrupt("tenant dropped")

    def stop(self):
        for tenant in list(self._probe_processes):
            process = self._probe_processes.pop(tenant)
            process.interrupt("health tracker stopped")

    # ------------------------------------------------------------------
    # Half-open probing
    # ------------------------------------------------------------------

    def _probe_loop(self, tenant):
        """Sleep through the cooldown, then probe until the tenant heals."""
        try:
            while True:
                entry = self.health(tenant)
                cooldown = entry.open_duration
                cooldown *= 1.0 + 0.25 * self.sim.rng.random()  # jitter
                yield self.sim.timeout(cooldown)
                registration = self.syncer.tenants.get(tenant)
                if registration is None:
                    break
                entry.state = STATE_HALF_OPEN
                entry.probes_total += 1
                try:
                    yield from registration.client.list("namespaces")
                except ApiError:
                    # Still down: re-open with a longer (capped) cooldown.
                    entry.state = STATE_OPEN
                    entry.open_duration = min(entry.open_duration * 2,
                                              self.max_open_duration)
                    continue
                self._close(tenant, entry)
                break
        except Interrupt:
            return
        finally:
            self._probe_processes.pop(tenant, None)

    def _close(self, tenant, entry):
        entry.state = STATE_CLOSED
        entry.consecutive_failures = 0
        entry.open_duration = 0.0
        entry.opened_at = None
        if entry.degraded_since is not None:
            entry.time_degraded += self.sim.now - entry.degraded_since
            entry.degraded_since = None
        self.syncer.metrics_inc("breaker_close")
        self._unpark(tenant)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self):
        return {
            tenant: {
                "state": entry.state,
                "consecutive_failures": entry.consecutive_failures,
                "failures_total": entry.failures_total,
                "opens_total": entry.opens_total,
                "probes_total": entry.probes_total,
                "parked": self.parked_count(tenant),
                "time_degraded": self.time_degraded(tenant),
            }
            for tenant, entry in sorted(self._tenants.items())
        }
