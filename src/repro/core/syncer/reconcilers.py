"""Per-resource reconcilers: downward and upward synchronization.

Downward reconcilers populate tenant objects used in Pod provision into
the super cluster; upward reconcilers populate statuses back (paper
§III-C, Fig. 5).  Every reconciler compares states **against the informer
caches** on both sides — never by querying the apiservers directly — and
tolerates the races of the eventual-consistency model (an object may be
gone by the time its event is handled; the periodic scanner remediates
anything that slips through).
"""

from repro.apiserver.errors import (
    AlreadyExists,
    ApiError,
    Conflict,
    NotFound,
    is_retryable,
)
from repro.objects import Namespace

from ..crd import super_namespace
from .conversion import (
    is_managed,
    specs_equivalent,
    super_key_for,
    tenant_key,
    tenant_origin,
    to_super,
    to_super_pod,
)

# The resource types the syncer synchronizes (twelve, as in the paper).
DOWNWARD_TYPES = (
    "namespaces",
    "pods",
    "services",
    "secrets",
    "configmaps",
    "serviceaccounts",
    "persistentvolumeclaims",
    "resourcequotas",
)
UPWARD_TYPES = (
    "pods",          # statuses + vNode binding
    "events",        # super-cluster events for tenant objects
    "endpoints",     # endpoints realized in the super cluster
    "persistentvolumes",
    "storageclasses",
)


class DownwardReconciler:
    """Generic downward reconciler (copy tenant object into super)."""

    plural = None
    obj_type = None

    def __init__(self, syncer):
        self.syncer = syncer
        self.sim = syncer.sim

    # -- helpers -------------------------------------------------------

    def tenant_cache(self, tenant):
        return self.syncer.tenant_informer(tenant, self.plural).cache

    def super_cache(self):
        return self.syncer.super_informer(self.plural).cache

    def translate(self, obj, vc):
        return to_super(obj, vc)

    # -- the reconcile entry point --------------------------------------

    def sync_down(self, tenant, key):
        """Coroutine: converge the super object for tenant object ``key``."""
        registration = self.syncer.tenants.get(tenant)
        if registration is None:
            return
        vc = registration.vc
        tenant_obj = self.tenant_cache(tenant).get_copy(key)
        skey = super_key_for(self.obj_type, vc, key)
        super_obj = self.super_cache().get_copy(skey)

        if tenant_obj is None or tenant_obj.metadata.deletion_timestamp:
            if super_obj is not None and is_managed(super_obj):
                yield from self.delete_super(super_obj)
            return

        if super_obj is None:
            yield from self.create_super(tenant_obj, vc)
            return
        if not is_managed(super_obj):
            return  # never touch objects the syncer does not own
        yield from self.update_super(tenant_obj, super_obj, vc)

    # -- operations (overridable) ----------------------------------------

    def create_super(self, tenant_obj, vc):
        translated = self.translate(tenant_obj, vc)
        if self.obj_type.NAMESPACED:
            yield from self.syncer.ensure_super_namespace(
                vc, tenant_obj.metadata.namespace)
        try:
            yield from self.syncer.super_writer.create(translated)
        except AlreadyExists:
            pass
        except NotFound:
            # Namespace raced away; the scanner will retry.
            self.syncer.metrics_inc("dws_create_race")

    def update_super(self, tenant_obj, super_obj, vc):
        if specs_equivalent(tenant_obj, super_obj):
            if not self._payload_changed(tenant_obj, super_obj):
                return
        translated = self.translate(tenant_obj, vc)
        translated.metadata.resource_version = (
            super_obj.metadata.resource_version)
        translated.metadata.uid = super_obj.metadata.uid
        if hasattr(translated, "spec") and hasattr(translated.spec,
                                                   "node_name"):
            translated.spec.node_name = super_obj.spec.node_name
        if hasattr(translated, "status"):
            translated.status = super_obj.status
        try:
            yield from self.syncer.super_writer.update(translated)
        except (Conflict, NotFound):
            self.syncer.metrics_inc("dws_update_race")

    def delete_super(self, super_obj):
        try:
            yield from self.syncer.super_writer.delete(
                self.plural, super_obj.metadata.name,
                namespace=super_obj.metadata.namespace)
        except NotFound:
            pass

    def _payload_changed(self, tenant_obj, super_obj):
        """Non-spec payloads (secrets' data, configmaps' data, labels)."""
        for attr in ("data", "string_data", "binary_data"):
            if hasattr(tenant_obj, attr):
                if getattr(tenant_obj, attr) != getattr(super_obj, attr, None):
                    return True
        tenant_labels = dict(tenant_obj.metadata.labels or {})
        super_labels = dict(super_obj.metadata.labels or {})
        super_labels.pop("tenancy.x-k8s.io/managed-by", None)
        return tenant_labels != super_labels


class NamespaceDownward(DownwardReconciler):
    plural = "namespaces"

    def __init__(self, syncer):
        super().__init__(syncer)
        from repro.objects import Namespace as NamespaceType

        self.obj_type = NamespaceType

    def sync_down(self, tenant, key):
        registration = self.syncer.tenants.get(tenant)
        if registration is None:
            return
        vc = registration.vc
        tenant_ns = self.tenant_cache(tenant).get_copy(key)
        sname = super_namespace(vc, key)
        super_ns = self.super_cache().get_copy(sname)
        if tenant_ns is None or tenant_ns.is_terminating:
            if super_ns is not None and is_managed(super_ns):
                try:
                    yield from self.syncer.super_writer.delete(
                        "namespaces", sname)
                except NotFound:
                    pass
            return
        if super_ns is None:
            yield from self.syncer.ensure_super_namespace(vc, key)


class PodDownward(DownwardReconciler):
    plural = "pods"

    def __init__(self, syncer):
        super().__init__(syncer)
        from repro.objects import Pod as PodType

        self.obj_type = PodType

    def translate(self, obj, vc):
        return to_super_pod(obj, vc)

    def sync_down(self, tenant, key):
        registration = self.syncer.tenants.get(tenant)
        if registration is None:
            return
        vc = registration.vc
        tenant_pod = self.tenant_cache(tenant).get_copy(key)
        skey = super_key_for(self.obj_type, vc, key)
        super_pod = self.super_cache().get_copy(skey)

        if tenant_pod is None or tenant_pod.metadata.deletion_timestamp:
            if super_pod is not None and is_managed(super_pod):
                yield from self.delete_super(super_pod)
            self.syncer.vnodes.pod_deleted(tenant, key)
            return
        if tenant_pod.is_terminal:
            return
        if super_pod is None:
            yield from self.create_super(tenant_pod, vc)
            self.syncer.trace_store.mark(tenant, key, "dws_done",
                                         self.sim.now)
            return
        if not is_managed(super_pod):
            return
        if not specs_equivalent(tenant_pod, super_pod):
            # Pod specs are immutable apart from syncer-managed fields;
            # a divergent spec means the tenant recreated the pod.
            yield from self.delete_super(super_pod)
            yield from self.create_super(tenant_pod, vc)


class ServiceDownward(DownwardReconciler):
    plural = "services"

    def __init__(self, syncer):
        super().__init__(syncer)
        from repro.objects import Service as ServiceType

        self.obj_type = ServiceType

    def translate(self, obj, vc):
        translated = to_super(obj, vc)
        # The super cluster allocates its own cluster IP; the tenant's
        # allocation is only meaningful inside the tenant control plane.
        translated.spec.cluster_ip = None
        return translated

    def update_super(self, tenant_obj, super_obj, vc):
        if specs_equivalent(tenant_obj, super_obj,
                            ignore_fields=("nodeName", "clusterIP")):
            return
        translated = self.translate(tenant_obj, vc)
        translated.spec.cluster_ip = super_obj.spec.cluster_ip
        translated.metadata.resource_version = (
            super_obj.metadata.resource_version)
        try:
            yield from self.syncer.super_writer.update(translated)
        except (Conflict, NotFound):
            self.syncer.metrics_inc("dws_update_race")


class GenericDownward(DownwardReconciler):
    """Used for secrets, configmaps, serviceaccounts, PVCs, quotas."""

    def __init__(self, syncer, plural, obj_type):
        super().__init__(syncer)
        self.plural = plural
        self.obj_type = obj_type


class UpwardReconciler:
    """Base for upward reconcilers (super -> tenant)."""

    plural = None

    def __init__(self, syncer):
        self.syncer = syncer
        self.sim = syncer.sim

    def super_cache(self):
        return self.syncer.super_informer(self.plural).cache

    def sync_up(self, tenant, super_key):
        raise NotImplementedError


class PodUpward(UpwardReconciler):
    """Copies super pod statuses back and manages the vNode binding."""

    plural = "pods"

    def sync_up(self, tenant, super_key):
        registration = self.syncer.tenants.get(tenant)
        if registration is None:
            return
        super_pod = self.super_cache().get_copy(super_key)
        if super_pod is None:
            return
        t_key = tenant_key(super_pod)
        if t_key is None:
            return
        tenant_client = registration.client
        tenant_pod = self.syncer.tenant_informer(
            tenant, "pods").cache.get_copy(t_key)
        if tenant_pod is None:
            # Tenant pod vanished while the super pod still exists: the
            # downward path (or scanner) will delete the orphan.
            return

        # 1. Bind the tenant pod to its vNode when the super pod got
        #    scheduled onto a physical node.
        if super_pod.spec.node_name and not tenant_pod.spec.node_name:
            yield from self.syncer.vnodes.ensure_vnode(
                tenant, super_pod.spec.node_name)
            try:
                tenant_pod = yield from tenant_client.bind_pod(
                    tenant_pod.name, tenant_pod.namespace,
                    super_pod.spec.node_name)
            except NotFound:
                return
            except Conflict:
                tenant_pod = self.syncer.tenant_informer(
                    tenant, "pods").cache.get_copy(t_key)
                if tenant_pod is None or not tenant_pod.spec.node_name:
                    # Stale cache: the super pod emits no further events,
                    # so retry explicitly rather than dropping the item.
                    self.syncer.requeue_upward_later(tenant, "pods",
                                                     super_key)
                    return
            self.syncer.vnodes.pod_bound(tenant, t_key,
                                         super_pod.spec.node_name)

        # 2. Copy the status block.
        if tenant_pod.status == super_pod.status:
            return
        became_ready = (super_pod.status.is_ready
                        and not tenant_pod.status.is_ready)
        tenant_pod.status = super_pod.status.copy()
        try:
            yield from tenant_client.update_status(tenant_pod)
        except NotFound:
            return
        except Conflict:
            self.syncer.metrics_inc("uws_update_race")
            self.syncer.requeue_upward_later(tenant, "pods", super_key)
            return
        if became_ready:
            self.syncer.trace_store.mark(tenant, t_key, "uws_done",
                                         self.sim.now)


class EventUpward(UpwardReconciler):
    """Copies super-cluster Events about tenant objects into the tenant."""

    plural = "events"

    def sync_up(self, tenant, super_key):
        registration = self.syncer.tenants.get(tenant)
        if registration is None:
            return
        event = self.super_cache().get_copy(super_key)
        if event is None:
            return
        origin = self.syncer.resolve_super_namespace(event.namespace)
        if origin is None or origin[0] != tenant:
            return
        translated = event.copy()
        translated.metadata.namespace = origin[1]
        translated.metadata.resource_version = None
        translated.metadata.uid = None
        if translated.involved_object is not None:
            translated.involved_object.namespace = origin[1]
        try:
            yield from registration.client.create(translated)
        except AlreadyExists:
            pass
        except ApiError as exc:
            self.syncer.metrics_inc("uws_event_drop")
            if is_retryable(exc):
                # An unreachable tenant control plane must surface to the
                # worker (it feeds the circuit breaker); only non-retryable
                # races are best-effort drops.
                raise


class EndpointsUpward(UpwardReconciler):
    """Mirrors super endpoints of synced services into the tenant.

    The tenant's own endpoints controller computes endpoints from tenant
    pods too; the syncer only fills gaps for services whose pods run in
    the super cluster but are not yet reflected (it never fights an
    existing tenant endpoints object with identical subsets).
    """

    plural = "endpoints"

    def sync_up(self, tenant, super_key):
        registration = self.syncer.tenants.get(tenant)
        if registration is None:
            return
        endpoints = self.super_cache().get_copy(super_key)
        if endpoints is None:
            return
        t_key = tenant_key(endpoints)
        if t_key is None:
            return
        tenant_eps = self.syncer.tenant_informer(
            tenant, "endpoints").cache.get_copy(t_key)
        if tenant_eps is None:
            return
        if ([s.to_dict() for s in tenant_eps.subsets]
                == [s.to_dict() for s in endpoints.subsets]):
            return
        # Tenant endpoints controller owns the object; nothing to do when
        # it already converged.  (Kept as an explicit no-op branch so the
        # race is documented.)
        return
        yield  # pragma: no cover - marks this method as a generator


class ClusterResourceUpward(UpwardReconciler):
    """Broadcasts cluster-scoped resources (PVs, StorageClasses) to all
    tenants so tenants can discover them."""

    def __init__(self, syncer, plural, obj_type):
        super().__init__(syncer)
        self.plural = plural
        self.obj_type = obj_type

    def sync_up(self, tenant, super_key):
        registration = self.syncer.tenants.get(tenant)
        if registration is None:
            return
        obj = self.super_cache().get_copy(super_key)
        tenant_cache = self.syncer.tenant_informer(tenant, self.plural).cache
        if obj is None:
            if super_key in tenant_cache:
                try:
                    yield from registration.client.delete(self.plural,
                                                          super_key)
                except NotFound:
                    pass
            return
        translated = obj.copy()
        translated.metadata.resource_version = None
        translated.metadata.uid = None
        existing = tenant_cache.get_copy(super_key)
        if existing is None:
            try:
                yield from registration.client.create(translated)
            except AlreadyExists:
                pass
        elif existing.to_dict().get("spec") != translated.to_dict().get(
                "spec"):
            translated.metadata.resource_version = (
                existing.metadata.resource_version)
            try:
                yield from registration.client.update(translated)
            except (Conflict, NotFound):
                pass
