"""Batched downward writes (DESIGN.md §9).

Every downward reconcile used to issue its super-cluster write as its own
apiserver request — one request overhead, one inflight slot and one etcd
round trip per object.  The :class:`DownwardBatchWriter` coalesces writes
from concurrent DWS workers into multi-op transactions: a worker submits
its op and suspends on an event; a flusher ships up to ``batch_max`` ops
as one ``client.transaction`` call after at most ``batch_linger`` seconds,
then resolves each submitter's event with its own result (or raises its
own :class:`ApiError` at the submitter's yield point, so reconcilers'
existing ``except AlreadyExists/NotFound/Conflict`` handling is unchanged).

With ``downward_batch_max <= 1`` (the default — paper-faithful behavior)
the writer is a transparent pass-through to the plain client calls.

When the syncer runs as an HA replica (``syncer.current_fence()`` is not
None), every write — batched or pass-through — travels as a fenced
transaction stamped with the leader's (domain, token), so a deposed
leader's in-flight writes die at the store with
:class:`~repro.apiserver.errors.FencingConflict` instead of racing its
successor (split-brain protection, DESIGN.md §10).
"""

from repro.apiserver.errors import ServerUnavailable
from repro.simkernel.events import Event


class DownwardBatchWriter:
    """Coalesces super-cluster writes into multi-op transactions."""

    def __init__(self, syncer):
        self.syncer = syncer
        self.sim = syncer.sim
        cfg = syncer.config.syncer
        self.batch_max = max(1, cfg.downward_batch_max)
        self.linger = cfg.downward_batch_linger
        self.enabled = self.batch_max > 1
        self.client = syncer.super_client
        self._pending = []          # [(op_tuple, Event)]
        self._flusher = None
        self._stopped = False
        self.batches_flushed = 0
        self.ops_batched = 0
        self.largest_batch = 0
        self.fenced_writes = 0

    # ------------------------------------------------------------------
    # Write API (mirrors the Client write verbs; all coroutines)
    # ------------------------------------------------------------------

    def _fence(self):
        """The owner's (domain, token) stamp, or None outside HA.  Kept
        getattr-soft so writer tests can stub the syncer."""
        current = getattr(self.syncer, "current_fence", None)
        return current() if current is not None else None

    def create(self, obj, namespace=None):
        if not self.enabled:
            fence = self._fence()
            if fence is None:
                return (yield from self.client.create(obj,
                                                      namespace=namespace))
            return (yield from self._fenced_single(
                ("create", obj, namespace), fence))
        return (yield from self._submit(("create", obj, namespace)))

    def update(self, obj):
        if not self.enabled:
            fence = self._fence()
            if fence is None:
                return (yield from self.client.update(obj))
            return (yield from self._fenced_single(("update", obj, None),
                                                   fence))
        return (yield from self._submit(("update", obj, None)))

    def update_status(self, obj):
        if not self.enabled:
            fence = self._fence()
            if fence is None:
                return (yield from self.client.update_status(obj))
            return (yield from self._fenced_single(("update", obj, "status"),
                                                   fence))
        return (yield from self._submit(("update", obj, "status")))

    def delete(self, plural, name, namespace=None):
        if not self.enabled:
            fence = self._fence()
            if fence is None:
                return (yield from self.client.delete(plural, name,
                                                      namespace=namespace))
            return (yield from self._fenced_single(
                ("delete", plural, name, namespace), fence))
        return (yield from self._submit(("delete", plural, name, namespace)))

    def _fenced_single(self, op, fence):
        """Pass-through write as a 1-op fenced transaction: same CAS and
        validation cores, plus the split-brain guard; the per-op error
        re-raises so reconcilers' existing handling is unchanged."""
        results = yield from self.client.transaction([op], fencing=fence)
        self.fenced_writes += 1
        result = results[0]
        if isinstance(result, Exception):
            raise result
        return result

    # ------------------------------------------------------------------
    # Batching machinery
    # ------------------------------------------------------------------

    def _submit(self, op):
        if self._stopped:
            raise ServerUnavailable("batch writer stopped")
        event = Event(self.sim)
        self._pending.append((op, event))
        if self._flusher is None:
            self._flusher = self.sim.spawn(self._flush_loop(),
                                           name="dws-batch-flusher")
        result = yield event
        return result

    def _flush_loop(self):
        while self._pending and not self._stopped:
            if len(self._pending) < self.batch_max and self.linger:
                # Give concurrent workers a beat to join the batch.
                yield self.sim.timeout(self.linger)
            batch, self._pending = (self._pending[:self.batch_max],
                                    self._pending[self.batch_max:])
            if not batch:
                break
            fence = self._fence()
            try:
                results = yield from self.client.transaction(
                    [op for op, _event in batch], fencing=fence)
            except Exception as exc:  # noqa: BLE001 - fanned out to waiters
                for _op, event in batch:
                    event.fail(exc)
                    event.defused = True
                continue
            if fence is not None:
                self.fenced_writes += 1
            self.batches_flushed += 1
            self.ops_batched += len(batch)
            self.largest_batch = max(self.largest_batch, len(batch))
            for (_op, event), result in zip(batch, results):
                if isinstance(result, Exception):
                    event.fail(result)
                else:
                    event.succeed(result)
        self._flusher = None

    def start(self):
        """(Re-)arm the writer; a deposed leader that wins a later term
        reuses the same instance."""
        self._stopped = False

    def stop(self):
        self._stopped = True
        pending, self._pending = self._pending, []
        for _op, event in pending:
            if not event.triggered:
                event.fail(ServerUnavailable("batch writer stopped"))
                event.defused = True

    def stats(self):
        return {
            "enabled": self.enabled,
            "batch_max": self.batch_max,
            "batches_flushed": self.batches_flushed,
            "ops_batched": self.ops_batched,
            "largest_batch": self.largest_batch,
            "pending": len(self._pending),
            "fenced_writes": self.fenced_writes,
        }
