"""Multiple super clusters (paper §V, future work #3).

"In cases where worker nodes cannot be automatically added to or removed
from a super cluster, supporting multiple super clusters is an option to
break through the capacity limitation of a single super cluster. ... In
VirtualCluster, the users would not be aware of multiple super clusters."

:class:`SuperClusterFleet` runs several complete VirtualCluster
deployments (super cluster + tenant operator + syncer each) on one
simulation and places each new tenant on the super cluster with the most
free capacity.  Tenants receive an ordinary
:class:`~repro.core.env.TenantHandle` — nothing in their API surface
reveals which super cluster backs them, and (unlike Kubernetes
federation) they never see the member clusters.
"""

from repro.simkernel import Simulation

from .env import VirtualClusterEnv


class FleetCapacityError(RuntimeError):
    """No member super cluster can take another tenant's workload."""


class SuperClusterFleet:
    """Several super clusters behind one tenant-facing entry point."""

    def __init__(self, num_super_clusters=2, nodes_per_cluster=10,
                 seed=0, config=None, fair_queuing=True,
                 scan_interval=None):
        if num_super_clusters < 1:
            raise ValueError("need at least one super cluster")
        self.sim = Simulation(seed=seed)
        self.members = []
        for index in range(num_super_clusters):
            member = VirtualClusterEnv(
                sim=self.sim, name=f"sc{index}", config=config,
                num_virtual_nodes=nodes_per_cluster,
                fair_queuing=fair_queuing, scan_interval=scan_interval)
            self.members.append(member)
        self._tenant_member = {}
        self._bootstrapped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def bootstrap(self, settle=2.0):
        if self._bootstrapped:
            return
        for member in self.members:
            self.sim.run(until=self.sim.process(
                member._bootstrap(), name=f"bootstrap-{member.name}"))
        self.sim.run(until=self.sim.now + settle)
        for member in self.members:
            member._bootstrapped = True
        self._bootstrapped = True

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def capacity_of(self, member):
        """(used_pods, total_pod_capacity) for one member cluster."""
        api = member.super_cluster.api
        used = api.store.count_prefix("/registry/pods/")
        total = 0
        for node in api.reader.read_all("nodes"):
            pods = node.status.allocatable.get("pods")
            if pods is not None:
                total += int(pods.value)
        return used, total

    def pick_member(self):
        """Least-loaded placement: pod-capacity fraction first, tenant
        count as the tie-breaker (so empty clusters fill evenly)."""
        tenant_counts = {}
        for member in self._tenant_member.values():
            tenant_counts[member.name] = tenant_counts.get(member.name,
                                                           0) + 1
        best = None
        best_load = None
        for member in self.members:
            used, total = self.capacity_of(member)
            if total <= 0:
                continue
            load = (used / total, tenant_counts.get(member.name, 0))
            if load[0] >= 0.95:
                continue  # effectively full
            if best_load is None or load < best_load:
                best = member
                best_load = load
        if best is None:
            raise FleetCapacityError(
                "every super cluster in the fleet is at capacity")
        return best

    # ------------------------------------------------------------------
    # Tenant API (mirrors VirtualClusterEnv)
    # ------------------------------------------------------------------

    def create_tenant(self, name, weight=1):
        """Coroutine: place and provision a tenant on some member."""
        member = self.pick_member()
        handle = yield from member.create_tenant(name, weight=weight)
        self._tenant_member[handle.key] = member
        return handle

    def member_of(self, handle):
        """Which member backs a tenant (operator-facing, not tenant)."""
        return self._tenant_member.get(handle.key)

    def delete_tenant(self, handle):
        member = self._tenant_member.pop(handle.key, None)
        if member is None:
            return
        yield from member.delete_tenant(handle)

    # ------------------------------------------------------------------
    # Run helpers (same shape as VirtualClusterEnv)
    # ------------------------------------------------------------------

    def run_coroutine(self, coroutine, name="fleet-driver"):
        return self.sim.run(until=self.sim.process(coroutine, name=name))

    def run_for(self, seconds):
        self.sim.run(until=self.sim.now + seconds)

    def run_until(self, predicate, timeout=600.0, poll=0.1):
        deadline = self.sim.now + timeout
        while not predicate():
            if self.sim.now >= deadline:
                raise TimeoutError("fleet condition not met in time")
            self.sim.run(until=min(self.sim.now + poll, deadline))
        return self.sim.now

    def run_until_pods_ready(self, tenant, pod_keys, timeout=600.0):
        member = self.member_of(tenant)
        cache = member.syncer.tenant_informer(tenant.key, "pods").cache

        def all_ready():
            return all(
                (pod := cache.get(key)) is not None and pod.status.is_ready
                for key in pod_keys
            )

        return self.run_until(all_ready, timeout=timeout)

    def utilization(self):
        """Per-member (used, total) pod counts."""
        return {member.name: self.capacity_of(member)
                for member in self.members}
