"""The VirtualCluster (VC) custom resource.

Managed by the super-cluster administrator; one VC object describes one
tenant control plane (apiserver version, provisioning mode, resources).
The tenant operator reconciles these objects (paper §III-B(1)).
"""

import hashlib

from repro.objects.base import Field, Serializable
from repro.objects.meta import KubeObject


class VirtualClusterSpec(Serializable):
    FIELDS = (
        Field("apiserver_version", default="v1.18"),
        Field("mode", default="local"),  # "local" or "cloud"
        Field("cloud_provider"),          # e.g. "ack", "eks" in cloud mode
        Field("etcd_dedicated", default=True),
        Field("resources", container="map",
              default_factory=lambda: {"cpu": "2", "memory": "4Gi"}),
        Field("tenant_weight", default=1),
        Field("paused", default=False),
    )


class VirtualClusterStatus(Serializable):
    FIELDS = (
        Field("phase", default="Pending"),
        Field("reason"),
        Field("message"),
        Field("kubeconfig_secret"),
        Field("cert_hash"),
        Field("control_plane_endpoint"),
        Field("conditions", container="list", default_factory=list),
    )


class VirtualCluster(KubeObject):
    API_VERSION = "tenancy.x-k8s.io/v1alpha1"
    KIND = "VirtualCluster"
    PLURAL = "virtualclusters"
    NAMESPACED = True

    FIELDS = (
        Field("spec", type=VirtualClusterSpec,
              default_factory=VirtualClusterSpec),
        Field("status", type=VirtualClusterStatus,
              default_factory=VirtualClusterStatus),
    )

    @property
    def is_running(self):
        return self.status.phase == "Running"


def short_uid_hash(uid):
    """Six-hex-character hash of an object UID (namespace prefix part).

    Requires a ``str``: hashing ``str()`` of a non-string would embed
    its default repr — a memory address — making the derived namespace
    prefix differ across processes (linter rule D006).
    """
    if not isinstance(uid, str):
        raise TypeError(
            f"short_uid_hash needs the UID as str, "
            f"got {type(uid).__name__}")
    return hashlib.sha256(uid.encode()).hexdigest()[:6]


# DNS-1123 subdomain limit enforced by apiserver validation.
NAME_LIMIT = 253


def fit_name(name, limit=NAME_LIMIT):
    """Truncate an over-long composed name to the DNS limit, injectively.

    Prefixing a tenant name with the per-VC prefix can push it past 253
    characters.  The fitted name keeps a recognizable head and appends a
    hash of the full name, so two distinct long names never collide.
    Reverse mapping never parses the name — it reads the tenant-origin
    annotations — so the truncation is lossless for round-trips.
    """
    if len(name) <= limit:
        return name
    digest = hashlib.sha256(name.encode()).hexdigest()[:10]
    return f"{name[:limit - 11]}-{digest}"


def cluster_prefix(vc):
    """The per-VC namespace prefix: ``<name>-<uidhash>`` (paper §III-B(2))."""
    return f"{vc.name}-{short_uid_hash(vc.uid)}"


def super_namespace(vc, tenant_namespace):
    """Map a tenant namespace to its super-cluster namespace."""
    return fit_name(f"{cluster_prefix(vc)}-{tenant_namespace}")


def super_name(vc, name):
    """Map a cluster-scoped tenant object name to its super-cluster name."""
    return fit_name(f"{cluster_prefix(vc)}-{name}")


def make_virtual_cluster(name, namespace="vc-manager", weight=1,
                         mode="local"):
    vc = VirtualCluster()
    vc.metadata.name = name
    vc.metadata.namespace = namespace
    vc.spec.tenant_weight = weight
    vc.spec.mode = mode
    return vc
