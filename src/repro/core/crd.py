"""The VirtualCluster (VC) custom resource.

Managed by the super-cluster administrator; one VC object describes one
tenant control plane (apiserver version, provisioning mode, resources).
The tenant operator reconciles these objects (paper §III-B(1)).
"""

import hashlib

from repro.objects.base import Field, Serializable
from repro.objects.meta import KubeObject


class VirtualClusterSpec(Serializable):
    FIELDS = (
        Field("apiserver_version", default="v1.18"),
        Field("mode", default="local"),  # "local" or "cloud"
        Field("cloud_provider"),          # e.g. "ack", "eks" in cloud mode
        Field("etcd_dedicated", default=True),
        Field("resources", container="map",
              default_factory=lambda: {"cpu": "2", "memory": "4Gi"}),
        Field("tenant_weight", default=1),
        Field("paused", default=False),
    )


class VirtualClusterStatus(Serializable):
    FIELDS = (
        Field("phase", default="Pending"),
        Field("reason"),
        Field("message"),
        Field("kubeconfig_secret"),
        Field("cert_hash"),
        Field("control_plane_endpoint"),
        Field("conditions", container="list", default_factory=list),
    )


class VirtualCluster(KubeObject):
    API_VERSION = "tenancy.x-k8s.io/v1alpha1"
    KIND = "VirtualCluster"
    PLURAL = "virtualclusters"
    NAMESPACED = True

    FIELDS = (
        Field("spec", type=VirtualClusterSpec,
              default_factory=VirtualClusterSpec),
        Field("status", type=VirtualClusterStatus,
              default_factory=VirtualClusterStatus),
    )

    @property
    def is_running(self):
        return self.status.phase == "Running"


def short_uid_hash(uid):
    """Six-hex-character hash of an object UID (namespace prefix part)."""
    return hashlib.sha256(str(uid).encode()).hexdigest()[:6]


def cluster_prefix(vc):
    """The per-VC namespace prefix: ``<name>-<uidhash>`` (paper §III-B(2))."""
    return f"{vc.name}-{short_uid_hash(vc.uid)}"


def super_namespace(vc, tenant_namespace):
    """Map a tenant namespace to its super-cluster namespace."""
    return f"{cluster_prefix(vc)}-{tenant_namespace}"


def make_virtual_cluster(name, namespace="vc-manager", weight=1,
                         mode="local"):
    vc = VirtualCluster()
    vc.metadata.name = name
    vc.metadata.namespace = namespace
    vc.spec.tenant_weight = weight
    vc.spec.mode = mode
    return vc
