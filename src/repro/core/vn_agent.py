"""vn-agent: per-node proxy for tenant kubelet API requests (§III-B(3)).

A kubelet registers with exactly one apiserver (the super cluster's), so
tenant apiservers cannot reach it for ``logs``/``exec``.  Each vNode in a
tenant control plane therefore advertises the vn-agent's port; the agent

1. identifies the requesting tenant by comparing the hash of its TLS
   client certificate with the hash stored in each VC object,
2. translates the tenant namespace into the prefixed super-cluster
   namespace, and
3. forwards the request to the local kubelet.
"""

from repro.apiserver.errors import Forbidden, NotFound, Unauthorized

from .crd import super_namespace


class VnAgent:
    """One node's kubelet-API proxy."""

    def __init__(self, sim, node_name, kubelet, tenant_operator,
                 port=10550, proxy_latency=0.002):
        self.sim = sim
        self.node_name = node_name
        self.kubelet = kubelet
        self.tenant_operator = tenant_operator
        self.port = port
        self.proxy_latency = proxy_latency
        self.requests_proxied = 0
        self.requests_rejected = 0

    # ------------------------------------------------------------------
    # Tenant identification
    # ------------------------------------------------------------------

    def _identify_tenant(self, cert_hash):
        vc = self.tenant_operator.find_vc_by_cert_hash(cert_hash)
        if vc is None:
            self.requests_rejected += 1
            raise Unauthorized(
                "vn-agent: client certificate matches no VirtualCluster")
        return vc

    def _super_namespace(self, vc, tenant_namespace):
        return super_namespace(vc, tenant_namespace)

    # ------------------------------------------------------------------
    # Proxied kubelet APIs
    # ------------------------------------------------------------------

    def logs(self, credential, namespace, pod_name, container=None,
             tail=None):
        """Coroutine: proxy a ``kubectl logs`` request."""
        vc = self._identify_tenant(credential.cert_hash)
        sns = self._super_namespace(vc, namespace)
        yield self.sim.timeout(self.proxy_latency)
        try:
            lines = self.kubelet.get_logs(sns, pod_name,
                                          container_name=container,
                                          tail=tail)
        except NotFound:
            self.requests_rejected += 1
            raise
        self.requests_proxied += 1
        return lines

    def exec(self, credential, namespace, pod_name, command,
             container=None):
        """Coroutine: proxy a ``kubectl exec`` request."""
        vc = self._identify_tenant(credential.cert_hash)
        sns = self._super_namespace(vc, namespace)
        yield self.sim.timeout(self.proxy_latency)
        result = yield from self.kubelet.exec_in_pod(
            sns, pod_name, command, container_name=container)
        self.requests_proxied += 1
        return result

    def logs_denied_across_tenants(self, credential, other_vc, namespace,
                                   pod_name):
        """Coroutine: demonstrate isolation — a tenant cannot read another
        tenant's pod logs even if it guesses the raw super namespace."""
        vc = self._identify_tenant(credential.cert_hash)
        if vc.key != other_vc.key:
            self.requests_rejected += 1
            raise Forbidden(
                "vn-agent: certificate does not match the target tenant")
        return (yield from self.logs(credential, namespace, pod_name))
