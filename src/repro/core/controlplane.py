"""Control-plane assembly: apiserver + etcd + controllers (+ scheduler).

``TenantControlPlane`` deliberately has **no scheduler** — Pod scheduling
happens in the super cluster (paper §III-B(1)).  The super cluster gets
the full stack including the sequential default scheduler.
"""

from repro.apiserver import ADMIN, APIServer, Credential
from repro.clientgo import InformerFactory, Kubeconfig
from repro.controllers import ControllerManager
from repro.scheduler import Scheduler


class ControlPlane:
    """A running control plane within the simulation."""

    def __init__(self, sim, name, config, rbac=False):
        self.sim = sim
        self.name = name
        self.config = config
        self.api = APIServer(sim, name, config=config, rbac=rbac,
                             store=_build_store(sim, name, config))
        self.admin = ADMIN
        self.api.authenticator.register(self.admin)
        self._clients = {}
        self.controller_manager = None
        self.scheduler = None
        self.started = False

    def register_user(self, user, groups=()):
        """Issue a credential (synthetic client certificate) for a user."""
        credential = Credential(user, groups=groups)
        self.api.authenticator.register(credential)
        return credential

    def client(self, credential=None, user_agent=None, qps=200.0,
               burst=400, cpu_account=None):
        from repro.clientgo import Client

        credential = credential or self.admin
        return Client(self.sim, self.api, credential,
                      user_agent=user_agent or f"{self.name}-client",
                      qps=qps, burst=burst, cpu_account=cpu_account)

    def kubeconfig(self, credential=None):
        return Kubeconfig(self.api, credential or self.admin,
                          cluster_name=self.name)

    def etcd_stats(self):
        return self.api.store.stats()


class TenantControlPlane(ControlPlane):
    """A tenant's dedicated control plane: full API, no scheduler.

    The tenant is cluster-admin *of this control plane* and can freely
    create namespaces, CRDs, cluster roles, and webhooks without touching
    any other tenant — the paper's management-convenience argument.
    """

    def __init__(self, sim, name, config, owner_vc=None):
        super().__init__(sim, name, config, rbac=False)
        self.owner_vc = owner_vc
        self.tenant_credential = self.register_user(
            f"tenant-{name}", groups=("tenant-admins",))

    def start(self):
        """Start the tenant's built-in controllers (coroutine-free)."""
        if self.started:
            return
        client = self.client(user_agent=f"{self.name}-kcm")
        informers = InformerFactory(self.sim, client)
        self.controller_manager = ControllerManager(
            self.sim, client, informers, enable_workloads=True)
        self.controller_manager.start()
        self.started = True

    def stop(self):
        if self.controller_manager is not None:
            self.controller_manager.stop()
        self.started = False

    def tenant_kubeconfig(self):
        return self.kubeconfig(self.tenant_credential)


class SuperCluster(ControlPlane):
    """The super cluster: owns nodes, runs the scheduler."""

    def __init__(self, sim, config, name="super", rbac=False):
        super().__init__(sim, name, config, rbac=rbac)
        self.api.registry.register(_import_vc_type())
        self.informer_factory = None
        self.node_agents = []
        # Tiered admission (DESIGN.md §15): only when opted in, so the
        # default request path stays byte-identical to the seed.
        self.apf = None
        if getattr(config, "apf", None) is not None and config.apf.enabled:
            from repro.apiserver.apf import APFLimiter

            self.apf = APFLimiter(sim, config.apf, name=f"{name}-apf")
            self.api.apf = self.apf

    def start(self):
        if self.started:
            return
        kcm_client = self.client(user_agent="super-kcm", qps=2000,
                                 burst=4000)
        self.informer_factory = InformerFactory(self.sim, kcm_client)
        self.controller_manager = ControllerManager(
            self.sim, kcm_client, self.informer_factory,
            enable_workloads=True)
        sched_client = self.client(user_agent="super-scheduler", qps=5000,
                                   burst=10000)
        self.scheduler = Scheduler(self.sim, sched_client,
                                   self.informer_factory, self.config)
        self.controller_manager.start()
        self.informer_factory.start_all()
        self.scheduler.start()
        self.started = True

    def stop(self):
        if self.scheduler is not None:
            self.scheduler.stop()
        if self.controller_manager is not None:
            self.controller_manager.stop()
        for agent in self.node_agents:
            agent.stop()
        self.started = False


def _build_store(sim, name, config):
    """Construct this control plane's store per ``config.storage``.

    Returns None in the default configuration, so the apiserver builds
    the seed's plain in-memory :class:`EtcdStore` and default-mode runs
    stay byte-identical.  With durability opted in, the store gets a
    write-ahead log; with ``replicas > 1`` it becomes a replicated group
    with leader election and WAL streaming (DESIGN.md §13).
    """
    storage = getattr(config, "storage", None)
    if storage is None or not storage.durable:
        return None
    from repro.storage import EtcdStore, ReplicatedStore, WriteAheadLog

    if storage.replicated:
        return ReplicatedStore(
            sim, f"{name}-etcd", replicas=storage.replicas,
            segment_records=storage.wal_segment_records,
            fsync_interval=storage.wal_fsync_interval,
            replication_delay=storage.replication_delay,
            lease_duration=storage.lease_duration,
            renew_interval=storage.lease_renew_interval,
            retry_interval=storage.lease_retry_interval,
            jitter=storage.lease_jitter)
    wal = WriteAheadLog(sim, f"{name}-etcd",
                        segment_records=storage.wal_segment_records,
                        fsync_interval=storage.wal_fsync_interval)
    return EtcdStore(sim, name=f"{name}-etcd", wal=wal)


def _import_vc_type():
    from .crd import VirtualCluster

    return VirtualCluster
