"""Tenant operator: reconciles VirtualCluster objects (paper §III-B(1)).

Watches VC objects in the super cluster and drives tenant control plane
lifecycles: provisioning (local mode spins up an in-simulation control
plane; cloud mode models a managed-control-plane provisioning delay),
storing the tenant kubeconfig in a super-cluster Secret so the syncer can
reach every tenant, and deprovisioning on VC deletion.
"""

from repro.apiserver.errors import AlreadyExists, ApiError, NotFound
from repro.controllers.base import Controller
from repro.objects import Secret
from repro.simkernel.errors import Interrupt

from .controlplane import TenantControlPlane
from .crd import VirtualCluster, cluster_prefix

PROVISION_DELAY_LOCAL = 1.5   # etcd + apiserver + kcm pods come up
PROVISION_DELAY_CLOUD = 20.0  # managed control plane (ACK/EKS) provisioning
RESTORE_DELAY = 2.0           # rehydrate etcd from the last snapshot
VC_FINALIZER = "tenancy.x-k8s.io/vc-protection"


class TenantOperator(Controller):
    """The VC reconciler."""

    name = "tenant-operator"

    def __init__(self, sim, super_cluster, config, workers=4,
                 on_provisioned=None, on_deprovisioned=None):
        client = super_cluster.client(user_agent="tenant-operator")
        super().__init__(sim, client, workers=workers)
        self.super_cluster = super_cluster
        self.config = config
        self.on_provisioned = on_provisioned
        self.on_deprovisioned = on_deprovisioned
        self.control_planes = {}
        # Durability (DESIGN.md §10.3): periodic etcd snapshots per tenant
        # control plane, so a crashed one restarts from its last snapshot
        # instead of empty.  vc key -> latest EtcdStore.snapshot() dict.
        self.snapshots = {}
        self.snapshot_interval = getattr(
            config.syncer, "snapshot_interval", 0.0)
        self._needs_restore = set()
        self._snapshot_process = None
        self.snapshots_taken = 0
        self.restores_total = 0
        self.wal_restores = 0
        self._vc_informer = super_cluster.informer_factory.informer(
            "virtualclusters")
        self._vc_informer.add_handlers(
            on_add=self.enqueue_object,
            on_update=lambda old, new: self.enqueue_object(new),
            on_delete=self.enqueue_object,
        )
        # The super cluster's informer factory may already be running; a
        # freshly-created informer must be started explicitly.
        if self._vc_informer.reflector._process is None:
            self._vc_informer.start()

    def start(self):
        processes = super().start()
        if self.snapshot_interval > 0 and self._snapshot_process is None:
            self._snapshot_process = self.sim.spawn(
                self._snapshot_loop(), name="tenant-operator-snapshots")
            self._processes.append(self._snapshot_process)
        return processes

    def reconcile(self, key):
        vc = self._vc_informer.cache.get_copy(key)
        if key in self._needs_restore and key in self.control_planes:
            yield from self._restore(key)
        if vc is None:
            yield from self._deprovision(key)
            return
        if vc.metadata.deletion_timestamp is not None:
            yield from self._finalize(vc)
            return
        if VC_FINALIZER not in vc.metadata.finalizers:
            vc.metadata.finalizers.append(VC_FINALIZER)
            vc = yield from self.client.update(vc)
        if key in self.control_planes:
            if not vc.is_running:
                yield from self._mark_running(vc)
            return
        yield from self._provision(vc)

    # ------------------------------------------------------------------
    # Provision / deprovision
    # ------------------------------------------------------------------

    def _provision(self, vc):
        delay = (PROVISION_DELAY_CLOUD if vc.spec.mode == "cloud"
                 else PROVISION_DELAY_LOCAL)
        yield self.sim.timeout(delay)
        control_plane = TenantControlPlane(
            self.sim, name=cluster_prefix(vc), config=self.config,
            owner_vc=vc)
        control_plane.start()
        self.control_planes[vc.key] = control_plane

        # Persist the tenant kubeconfig in the super cluster so the syncer
        # (which never lets tenants in the other direction) can reach it.
        secret = Secret()
        secret.metadata.name = f"{cluster_prefix(vc)}-kubeconfig"
        secret.metadata.namespace = vc.namespace
        secret.string_data = {
            "cluster": control_plane.name,
            "user": control_plane.tenant_credential.user,
            "cert-hash": control_plane.tenant_credential.cert_hash,
        }
        try:
            yield from self.client.create(secret)
        except AlreadyExists:
            pass

        yield from self._mark_running(
            vc, kubeconfig_secret=secret.metadata.name,
            cert_hash=control_plane.tenant_credential.cert_hash)
        if self.on_provisioned is not None:
            self.on_provisioned(vc, control_plane)

    def _mark_running(self, vc, kubeconfig_secret=None, cert_hash=None):
        try:
            fresh = yield from self.client.get("virtualclusters", vc.name,
                                               namespace=vc.namespace)
        except NotFound:
            return
        fresh.status.phase = "Running"
        if kubeconfig_secret:
            fresh.status.kubeconfig_secret = kubeconfig_secret
        if cert_hash:
            fresh.status.cert_hash = cert_hash
        fresh.status.control_plane_endpoint = (
            f"https://{cluster_prefix(vc)}.svc:6443")
        try:
            yield from self.client.update_status(fresh)
        except ApiError:
            self.enqueue(vc.key)

    def _finalize(self, vc):
        yield from self._deprovision(vc.key)
        if VC_FINALIZER in vc.metadata.finalizers:
            try:
                fresh = yield from self.client.get(
                    "virtualclusters", vc.name, namespace=vc.namespace)
            except NotFound:
                return
            fresh.metadata.finalizers = [
                f for f in fresh.metadata.finalizers if f != VC_FINALIZER]
            try:
                yield from self.client.update(fresh)
            except ApiError:
                self.enqueue(vc.key)

    def _deprovision(self, key):
        control_plane = self.control_planes.pop(key, None)
        self.snapshots.pop(key, None)
        self._needs_restore.discard(key)
        if control_plane is None:
            return
        yield self.sim.timeout(0.5)
        control_plane.stop()
        if self.on_deprovisioned is not None:
            self.on_deprovisioned(key, control_plane)

    # ------------------------------------------------------------------
    # Snapshots / crash recovery (DESIGN.md §10.3)
    # ------------------------------------------------------------------

    def _snapshot_loop(self):
        while not self._stopped:
            try:
                yield self.sim.timeout(self.snapshot_interval)
            except Interrupt:
                return
            self.snapshot_all()

    def snapshot_all(self):
        """Snapshot every healthy tenant control plane's etcd."""
        for key in list(self.control_planes):
            self.snapshot_now(key)

    def snapshot_now(self, key):
        """Snapshot one tenant control plane's etcd store.

        A crashed control plane (awaiting restore) is skipped so its
        wiped store cannot overwrite the last good snapshot.
        """
        control_plane = self.control_planes.get(key)
        if control_plane is None or key in self._needs_restore:
            return None
        store = control_plane.api.store
        snapshot = store.snapshot()
        self.snapshots[key] = snapshot
        self.snapshots_taken += 1
        # WAL-equipped stores anchor their log to the snapshot: segments
        # the snapshot covers are compacted away (DESIGN.md §13).
        anchor = getattr(store, "anchor_wal", None)
        if anchor is not None:
            anchor(snapshot)
        return snapshot

    def crash_control_plane(self, key, total_loss=True):
        """Chaos hook: the tenant control plane's process dies.

        ``total_loss=True`` (the seed semantics) wipes etcd data *and*
        its WAL — the catastrophic case snapshots exist for.  With
        ``total_loss=False`` the process is killed but the disk (WAL)
        survives, so the restore path can replay to the last durable
        revision instead of falling back to a stale snapshot.
        """
        control_plane = self.control_planes.get(key)
        if control_plane is None:
            return False
        control_plane.stop()
        control_plane.api.crash()
        store = control_plane.api.store
        if not total_loss and getattr(store, "wal", None) is not None:
            store.power_off()
        else:
            store.wipe()
        self._needs_restore.add(key)
        self.enqueue(key)
        return True

    def _restore(self, key):
        """Coroutine: reprovision a crashed control plane.

        Prefers WAL replay when the store's durable log reaches past the
        last snapshot (zero committed-write loss); a gapped or empty log
        (:class:`CompactedError` — e.g. replay across a compaction
        boundary, or a total-loss wipe) falls back to snapshot-only
        recovery, exactly the seed behavior.
        """
        from repro.storage import CompactedError, RevisionCompacted

        control_plane = self.control_planes.get(key)
        if control_plane is None:
            self._needs_restore.discard(key)
            return
        yield self.sim.timeout(RESTORE_DELAY)
        store = control_plane.api.store
        snapshot = self.snapshots.get(key)
        snapshot_revision = snapshot["revision"] if snapshot else 0
        recovered = False
        wal_revision = getattr(store, "wal_durable_revision",
                               lambda: 0)()
        if wal_revision > snapshot_revision:
            try:
                store.recover_from_wal()
                recovered = True
                self.wal_restores += 1
            except (CompactedError, RevisionCompacted):
                recovered = False
        if not recovered and snapshot is not None:
            store.restore(snapshot)
        control_plane.api.recover()
        # Fresh kcm: controllers relist against the restored state.
        control_plane.start()
        self._needs_restore.discard(key)
        self.restores_total += 1

    def control_plane_for(self, vc_key):
        return self.control_planes.get(vc_key)

    def find_vc_by_cert_hash(self, cert_hash):
        """Used by vn-agent to map a TLS cert to a tenant (paper §III-B(3))."""
        for vc in self._vc_informer.cache.items():
            if vc.status.cert_hash == cert_hash:
                return vc
        return None
