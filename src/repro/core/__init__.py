"""VirtualCluster core: the paper's contribution.

Tenant operator + VC CRD, tenant control planes, the centralized
resource syncer (fair queuing, periodic scan, vNodes), and the vn-agent.
"""

from .controlplane import ControlPlane, SuperCluster, TenantControlPlane
from .federation import FleetCapacityError, SuperClusterFleet
from .swapper import IdleSwapper, control_plane_memory
from .crd import (
    VirtualCluster,
    cluster_prefix,
    make_virtual_cluster,
    short_uid_hash,
    super_namespace,
)
from .env import TenantHandle, VirtualClusterEnv
from .syncer.conversion import (
    tenant_key,
    tenant_origin,
    to_super,
    to_super_pod,
)
from .syncer.syncer import Syncer
from .syncer.tracing import PHASES, PodTrace, TraceStore
from .tenant_operator import TenantOperator
from .vn_agent import VnAgent

__all__ = [
    "ControlPlane",
    "FleetCapacityError",
    "IdleSwapper",
    "PHASES",
    "PodTrace",
    "SuperCluster",
    "SuperClusterFleet",
    "Syncer",
    "TenantControlPlane",
    "TenantHandle",
    "TenantOperator",
    "TraceStore",
    "VirtualCluster",
    "VirtualClusterEnv",
    "VnAgent",
    "cluster_prefix",
    "control_plane_memory",
    "make_virtual_cluster",
    "short_uid_hash",
    "super_namespace",
    "tenant_key",
    "tenant_origin",
    "to_super",
    "to_super_pod",
]
