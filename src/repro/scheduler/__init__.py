"""The super cluster's sequential default scheduler."""

from .plugins import (
    BalancedPodCount,
    ClusterSnapshot,
    FilterPlugin,
    InterPodAffinity,
    LeastAllocated,
    NodeReady,
    NodeResourcesFit,
    NodeSelectorMatch,
    NodeUnschedulable,
    ScorePlugin,
    TaintToleration,
    default_filters,
    default_scorers,
)
from .scheduler import Scheduler, SchedulingFailure

__all__ = [name for name in dir() if not name.startswith("_")]
