"""Scheduling predicates (filters) and priorities (scores).

A trimmed-down scheduler framework: each filter plugin can reject a node
for a pod, each score plugin rates surviving nodes.  Covers the semantics
the paper's experiments rely on — resource fit, node selector/affinity,
taints, and required inter-pod (anti-)affinity, which underpins the vNode
comparison in Fig. 6.
"""

from repro.objects import Quantity, add_resource_lists, fits_within


class FilterPlugin:
    name = "filter"

    def filter(self, pod, node, snapshot):
        """Return None to accept the node or a string reason to reject."""
        raise NotImplementedError


class ScorePlugin:
    name = "score"

    def score(self, pod, node, snapshot):
        """Return a number; higher is better."""
        raise NotImplementedError


class ClusterSnapshot:
    """Scheduler's view of nodes and assignments during one cycle."""

    def __init__(self, nodes, pods_by_node, usage_by_node):
        self.nodes = nodes
        self.pods_by_node = pods_by_node
        self.usage_by_node = usage_by_node

    def node_usage(self, node_name):
        return self.usage_by_node.get(node_name, {})

    def node_pods(self, node_name):
        return self.pods_by_node.get(node_name, [])


class NodeUnschedulable(FilterPlugin):
    name = "NodeUnschedulable"

    def filter(self, pod, node, snapshot):
        if node.spec.unschedulable:
            return "node is unschedulable"
        return None


class NodeReady(FilterPlugin):
    name = "NodeReady"

    def filter(self, pod, node, snapshot):
        if not node.status.is_ready:
            return "node is not ready"
        return None


class NodeResourcesFit(FilterPlugin):
    name = "NodeResourcesFit"

    def filter(self, pod, node, snapshot):
        requests = add_resource_lists(
            pod.spec.total_requests(), {"pods": Quantity.parse(1)})
        used = snapshot.node_usage(node.metadata.name)
        allocatable = node.status.allocatable
        remaining = {}
        for name, capacity in allocatable.items():
            remaining[name] = (Quantity.parse(capacity)
                               - used.get(name, Quantity.zero()))
        if not fits_within(requests, remaining):
            return "insufficient resources"
        return None


class NodeSelectorMatch(FilterPlugin):
    name = "NodeSelector"

    def filter(self, pod, node, snapshot):
        labels = node.metadata.labels or {}
        for key, value in (pod.spec.node_selector or {}).items():
            if labels.get(key) != value:
                return f"node selector {key}={value} not satisfied"
        affinity = pod.spec.affinity
        if affinity and affinity.node_affinity:
            if not affinity.node_affinity.matches(labels):
                return "node affinity not satisfied"
        return None


class TaintToleration(FilterPlugin):
    name = "TaintToleration"

    def filter(self, pod, node, snapshot):
        for taint in node.spec.taints:
            if taint.effect not in ("NoSchedule", "NoExecute"):
                continue
            if not any(tol.tolerates(taint) for tol in pod.spec.tolerations):
                return f"untolerated taint {taint.key}"
        return None


class InterPodAffinity(FilterPlugin):
    """Required pod affinity and anti-affinity over topology domains.

    Only the hostname topology key is modelled, which matches the
    anti-affinity scenario the paper uses to contrast vNodes with virtual
    kubelet (Fig. 6).
    """

    name = "InterPodAffinity"

    def filter(self, pod, node, snapshot):
        node_pods = snapshot.node_pods(node.metadata.name)
        anti = self._terms(pod, anti=True)
        for term in anti:
            if self._any_match(term, node_pods, pod.namespace):
                return "anti-affinity conflict"
        required = self._terms(pod, anti=False)
        for term in required:
            if not self._any_match(term, node_pods, pod.namespace):
                return "pod affinity not satisfied"
        return None

    def _terms(self, pod, anti):
        affinity = pod.spec.affinity
        if affinity is None:
            return []
        block = affinity.pod_anti_affinity if anti else affinity.pod_affinity
        if block is None:
            return []
        return [term for term in block.required_terms
                if term.topology_key == "kubernetes.io/hostname"]

    def _any_match(self, term, node_pods, namespace):
        namespaces = term.namespaces or [namespace]
        for other in node_pods:
            if other.namespace not in namespaces:
                continue
            if term.label_selector.matches(other.metadata.labels):
                return True
        return False


class LeastAllocated(ScorePlugin):
    """Prefer nodes with the most free CPU fraction (spreads load)."""

    name = "LeastAllocated"

    def score(self, pod, node, snapshot):
        allocatable = node.status.allocatable.get("cpu")
        if not allocatable:
            return 0.0
        used = snapshot.node_usage(node.metadata.name).get(
            "cpu", Quantity.zero())
        total = Quantity.parse(allocatable).milli
        if total <= 0:
            return 0.0
        return 1.0 - (used.milli / total)


class BalancedPodCount(ScorePlugin):
    """Prefer nodes with fewer pods (tie-breaker for request-less pods)."""

    name = "BalancedPodCount"

    def score(self, pod, node, snapshot):
        return -len(snapshot.node_pods(node.metadata.name))


def default_filters():
    return [
        NodeUnschedulable(),
        NodeReady(),
        NodeResourcesFit(),
        NodeSelectorMatch(),
        TaintToleration(),
        InterPodAffinity(),
    ]


def default_scorers():
    return [LeastAllocated(), BalancedPodCount()]
