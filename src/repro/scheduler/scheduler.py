"""The default scheduler: single queue, sequential scheduling.

The paper's measured scalability bottleneck: "The default Kubernetes
scheduler has a single queue, and it schedules Pod sequentially.
Therefore, we have seen the scheduler throughput peaked at a few hundred
Pods per second" (§IV-A).  The per-pod service time in
:class:`~repro.config.SchedulerLatency` is calibrated to exactly that
regime, and the sequential loop means backlog builds under burst load —
which produces the Super-Sched phase delays of Fig. 8 / Table I.
"""

from repro.apiserver.errors import ApiError, Conflict, NotFound
from repro.clientgo import WorkQueue
from repro.objects import Quantity, add_resource_lists
from repro.simkernel.errors import Interrupt
from repro.telemetry import telemetry_of

from .plugins import ClusterSnapshot, default_filters, default_scorers


class SchedulingFailure(Exception):
    """No node survived the filter plugins."""

    def __init__(self, pod_key, reasons):
        super().__init__(f"pod {pod_key}: 0/{len(reasons)} nodes available")
        self.reasons = reasons


class Scheduler:
    """Watches unscheduled pods and binds them to nodes, one at a time."""

    def __init__(self, sim, client, informer_factory, config,
                 filters=None, scorers=None, name="default-scheduler",
                 recorder=None):
        from repro.clientgo.events import EventRecorder

        self.sim = sim
        self.client = client
        self.config = config
        self.name = name
        self.recorder = recorder or EventRecorder(sim, client, name)
        self.filters = filters if filters is not None else default_filters()
        self.scorers = scorers if scorers is not None else default_scorers()
        self.queue = WorkQueue(sim, name=f"{name}-queue")
        self._pod_informer = informer_factory.informer("pods")
        self._node_informer = informer_factory.informer("nodes")
        self._pods_by_node = {}
        self._usage_by_node = {}
        self._assignments = {}
        self.scheduled_count = 0
        self.failed_count = 0
        self.schedule_latency_total = 0.0
        self._stopped = False
        self._workers = []
        telemetry = telemetry_of(sim)
        self._telemetry = telemetry
        self._binds_counter = telemetry.counter(
            "scheduler_binds_total", "successful pod bindings",
            labels=("scheduler",)).labels(scheduler=name)
        self._bind_failures_counter = telemetry.counter(
            "scheduler_bind_failures_total",
            "bind writes rejected by the apiserver",
            labels=("scheduler",)).labels(scheduler=name)
        self._unschedulable_counter = telemetry.counter(
            "scheduler_unschedulable_total",
            "scheduling attempts with no feasible node",
            labels=("scheduler",)).labels(scheduler=name)
        self._latency_hist = telemetry.histogram(
            "scheduler_e2e_seconds",
            "queue add -> successful bind latency",
            labels=("scheduler",)).labels(scheduler=name)

        self._pod_informer.add_handlers(
            on_add=self._on_pod_add,
            on_update=self._on_pod_update,
            on_delete=self._on_pod_delete,
        )

    # ------------------------------------------------------------------
    # Informer handlers
    # ------------------------------------------------------------------

    def _on_pod_add(self, pod):
        if pod.spec.node_name:
            self._track_assignment(pod)
        elif not pod.is_terminal:
            self.queue.add(pod.key)

    def _on_pod_update(self, old, pod):
        if pod.spec.node_name:
            self._track_assignment(pod)
        elif not pod.is_terminal:
            self.queue.add(pod.key)

    def _on_pod_delete(self, pod):
        self._untrack_assignment(pod.key)

    def _track_assignment(self, pod):
        previous = self._assignments.get(pod.key)
        if previous == pod.spec.node_name:
            return
        if previous is not None:
            self._untrack_assignment(pod.key)
        node = pod.spec.node_name
        self._assignments[pod.key] = node
        self._pods_by_node.setdefault(node, {})[pod.key] = pod
        requests = add_resource_lists(
            pod.spec.total_requests(), {"pods": Quantity.parse(1)})
        self._usage_by_node[node] = add_resource_lists(
            self._usage_by_node.get(node, {}), requests)

    def _untrack_assignment(self, pod_key):
        node = self._assignments.pop(pod_key, None)
        if node is None:
            return
        pod = self._pods_by_node.get(node, {}).pop(pod_key, None)
        if pod is not None:
            requests = add_resource_lists(
                pod.spec.total_requests(), {"pods": Quantity.parse(1)})
            usage = self._usage_by_node.get(node, {})
            for name, quantity in requests.items():
                if name in usage:
                    usage[name] = usage[name] - quantity

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def start(self):
        worker = self.sim.spawn(self._run(), name=f"{self.name}-loop")
        self._workers.append(worker)
        return worker

    def stop(self):
        self._stopped = True
        self.queue.shutdown()
        for worker in self._workers:
            worker.interrupt("scheduler stopped")

    def _run(self):
        while not self._stopped:
            try:
                pod_key, enqueued_at = yield self.queue.get()
            except Interrupt:
                return
            except Exception:
                return
            try:
                yield from self._schedule_one(pod_key, enqueued_at)
            except Interrupt:
                return
            finally:
                self.queue.done(pod_key)

    def _schedule_one(self, pod_key, enqueued_at):
        pod = self._pod_informer.cache.get_copy(pod_key)
        if pod is None or pod.spec.node_name or pod.is_terminal:
            return
        cfg = self.config.scheduler
        jitter = self.sim.rng.uniform(-cfg.service_jitter,
                                      cfg.service_jitter)
        yield self.sim.timeout(max(0.0, cfg.service_time + jitter))

        snapshot = ClusterSnapshot(
            self._node_informer.cache.items(),
            {node: list(pods.values())
             for node, pods in self._pods_by_node.items()},
            self._usage_by_node,
        )
        chosen, reasons = self._select_node(pod, snapshot)
        if chosen is None:
            self.failed_count += 1
            self._unschedulable_counter.inc()
            yield from self._record_failure(pod, reasons)
            return
        # Assume the pod onto the node and bind asynchronously, like the
        # real scheduler: the sequential loop moves on immediately.
        assumed = pod.copy()
        assumed.spec.node_name = chosen.metadata.name
        self._track_assignment(assumed)
        self.sim.spawn(
            self._bind_async(pod, chosen.metadata.name, pod_key,
                             enqueued_at),
            name=f"bind-{pod_key}")

    def _bind_async(self, pod, node_name, pod_key, enqueued_at):
        with self._telemetry.span("scheduler.bind", node=node_name):
            try:
                yield from self.client.bind_pod(pod.name, pod.namespace,
                                                node_name)
            except (Conflict, NotFound):
                self._bind_failures_counter.inc()
                self._untrack_assignment(pod_key)
                return
            except ApiError:
                self._bind_failures_counter.inc()
                self._untrack_assignment(pod_key)
                self.queue.add(pod_key)
                return
        self.scheduled_count += 1
        self._binds_counter.inc()
        self.schedule_latency_total += self.sim.now - enqueued_at
        self._latency_hist.observe(self.sim.now - enqueued_at)

    def _select_node(self, pod, snapshot):
        feasible = []
        reasons = {}
        for node in snapshot.nodes:
            rejection = None
            for plugin in self.filters:
                rejection = plugin.filter(pod, node, snapshot)
                if rejection is not None:
                    reasons[node.metadata.name] = rejection
                    break
            if rejection is None:
                feasible.append(node)
        if not feasible:
            return None, reasons
        best = None
        best_score = None
        for node in feasible:
            score = sum(plugin.score(pod, node, snapshot)
                        for plugin in self.scorers)
            if best_score is None or score > best_score:
                best = node
                best_score = score
        return best, reasons

    def _record_failure(self, pod, reasons):
        """Mark the pod unschedulable and retry later."""
        summary = "; ".join(sorted(set(reasons.values()))) or "no nodes"
        self.recorder.event(pod, "FailedScheduling", summary,
                            event_type="Warning")
        pod.status.set_condition(
            "PodScheduled", "False", reason="Unschedulable",
            message=summary,
            now=self.sim.now)
        try:
            yield from self.client.update_status(pod)
        except ApiError:
            pass

        def retry(key=pod.key):
            yield self.sim.timeout(1.0)
            self.queue.add(key)

        self.sim.spawn(retry(), name="sched-retry")
